//! The SGX-style (parallelizable-tree) memory controller family.
//!
//! One controller struct implements all four schemes of the paper's §6.2
//! (write-back, strict persistence, Osiris, ASIT); [`SgxScheme`] selects
//! the hooks. The tree is the parallelizable SGX-style counter tree with
//! *lazy* updates: a counter increment touches only the leaf in the
//! cache, and version counters propagate upward when dirty nodes are
//! written back (paper §2.3.2, Vault/Synergy style).

mod recovery;
mod repair;

#[cfg(test)]
mod tests;

use crate::config::AnubisConfig;
use crate::cost::{CostAccum, OpCost};
use crate::error::{freshness_hint, IntegrityWitness, MemError, RecoveryError};
use crate::layout::{DataAddr, SgxLayout};
use crate::recovery::RecoveryReport;
use crate::shadow::StEntry;
use crate::shadow_tree::ShadowTree;
use crate::MemoryController;
use anubis_cache::MetadataCache;
use anubis_crypto::hash::Hasher64;
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{DataCodec, MacCache, SealedBlock, SgxCounterNode, SGX_COUNTERS_PER_NODE};
use anubis_itree::bonsai::Root;
use anubis_itree::NodeId;
use anubis_nvm::{Block, BlockAddr, MemBackend, NvmBackend, PersistenceDomain, WriteOp};
use anubis_telemetry::Telemetry;

/// Backend register slot mirroring the on-chip top counter node.
pub(crate) const REG_TOP: u8 = 0;
/// Backend register slot mirroring `SHADOW_TREE_ROOT` (word 0).
pub(crate) const REG_SHADOW: u8 = 1;

/// Which §6.2 scheme an [`SgxController`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SgxScheme {
    /// Lazy write-back caching; unrecoverable after losing any dirty
    /// interior node (the paper's §3 motivation).
    WriteBack,
    /// Eager in-cache updates (every write propagates version counters up
    /// to the on-chip top node) with lazy *persistence*. Demonstrates the
    /// paper's §2.6 point: for SGX-style trees even a perfectly fresh
    /// root cannot recover lost intermediate nodes — eager update is
    /// insufficient, a shadow of the cache *contents* is required.
    EagerWriteBack,
    /// Eager update and immediate persistence of the whole path — the
    /// only pre-Anubis scheme that can recover an SGX-style tree.
    StrictPersist,
    /// Osiris-style stop-loss on leaf counters. Models the run-time cost;
    /// recovery remains impossible because interior nodes cannot be
    /// rebuilt from leaves.
    Osiris,
    /// ASIT (paper §4.3): lazy updates plus an integrity-protected Shadow
    /// Table mirroring the metadata cache.
    Asit,
}

impl SgxScheme {
    /// Scheme name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            SgxScheme::WriteBack => "sgx-write-back",
            SgxScheme::EagerWriteBack => "sgx-eager-write-back",
            SgxScheme::StrictPersist => "sgx-strict-persist",
            SgxScheme::Osiris => "sgx-osiris",
            SgxScheme::Asit => "asit",
        }
    }

    /// The four schemes of the paper's Figure 11, in its order.
    pub fn all() -> [SgxScheme; 4] {
        [
            SgxScheme::WriteBack,
            SgxScheme::StrictPersist,
            SgxScheme::Osiris,
            SgxScheme::Asit,
        ]
    }

    /// Every implemented scheme, including the beyond-paper
    /// [`SgxScheme::EagerWriteBack`] demonstrator.
    pub fn all_with_extras() -> [SgxScheme; 5] {
        [
            SgxScheme::WriteBack,
            SgxScheme::EagerWriteBack,
            SgxScheme::StrictPersist,
            SgxScheme::Osiris,
            SgxScheme::Asit,
        ]
    }
}

/// A cached SGX node plus Osiris stop-loss bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SgxEntry {
    pub(crate) node: SgxCounterNode,
    pub(crate) since_persist: u8,
}

/// The SGX-style secure memory controller (paper §4.3 and baselines).
///
/// Generic over the NVM storage backend, like
/// [`crate::BonsaiController`]: the default in-memory [`MemBackend`], or
/// a durable backend whose image can be reopened with
/// [`SgxController::reopen`] after the process died.
#[derive(Clone, Debug)]
pub struct SgxController<B: NvmBackend = MemBackend> {
    scheme: SgxScheme,
    config: AnubisConfig,
    layout: SgxLayout,
    domain: PersistenceDomain<B>,
    codec: DataCodec,
    mac_key: Hasher64,
    cache: MetadataCache<SgxEntry>,
    /// On-chip persistent register: the top node's eight version counters.
    top: SgxCounterNode,
    /// The content a never-written node logically holds: zero counters
    /// sealed against a zero parent counter. One value serves every node
    /// because SGX MACs are content-only.
    canonical_zero: SgxCounterNode,
    /// Volatile shadow-table mirror + protection tree (ASIT only).
    shadow_tree: Option<ShadowTree>,
    /// On-chip persistent register: `SHADOW_TREE_ROOT` (ASIT only).
    shadow_root: Root,
    /// Root value to install at commit time (keeps the register update
    /// atomic with the ST write group).
    pending_shadow_root: Option<Root>,
    /// Words repaired by the SEC-DED decoder on the data read path.
    ecc_corrections: u64,
    /// Snapshot images the restore path rejected (parse failure or
    /// epoch behind the sealed anchor).
    snapshot_rejected: u64,
    cost: OpCost,
    totals: CostAccum,
    pending: Vec<WriteOp>,
    /// Volatile cache of MAC-verified line fingerprints: reads of
    /// unmodified lines skip the MAC recomputation (cleared on crash).
    mac_cache: MacCache,
    /// Data seals deferred to commit time, where the whole group is
    /// sealed through the batch crypto path: `(addr, iv, plaintext)`.
    seal_jobs: Vec<(BlockAddr, IvCounter, Block)>,
    /// Indices into `pending` of the placeholder (ciphertext, side) ops
    /// each seal job fills in, parallel to `seal_jobs`.
    seal_slots: Vec<(usize, usize)>,
    /// Reused output buffer for the batch seal (allocation-free steady
    /// state).
    seal_out: Vec<SealedBlock>,
    telemetry: Telemetry,
    /// Simulation oracle: whether the last crash destroyed dirty cached
    /// metadata. Write-back and Osiris cannot recover an SGX tree in that
    /// case (paper §3); in hardware the failure surfaces as stale or
    /// unreadable data, which this flag stands in for (see DESIGN.md).
    lost_dirty_metadata: bool,
}

impl SgxController {
    /// Builds a controller over a fresh all-zero in-memory NVM image.
    pub fn new(scheme: SgxScheme, config: &AnubisConfig) -> Self {
        Self::assemble(scheme, config, |layout| {
            PersistenceDomain::new(layout.device_bytes())
        })
    }
}

impl<B: NvmBackend> SgxController<B> {
    /// Shared construction over any persistence domain.
    fn assemble(
        scheme: SgxScheme,
        config: &AnubisConfig,
        make_domain: impl FnOnce(&SgxLayout) -> PersistenceDomain<B>,
    ) -> Self {
        let cache: MetadataCache<SgxEntry> =
            MetadataCache::new(config.metadata_cache_bytes, config.metadata_cache_ways);
        let layout = SgxLayout::new(config, cache.num_slots() as u64);
        let mut domain = make_domain(&layout);
        domain.device_mut().register_regions(layout.regions());
        domain.device_mut().install_spare_pool(layout.spare_pool());
        let mac_key = Hasher64::new(config.key.derive("sgx-mac"));
        let mut canonical_zero = SgxCounterNode::new();
        canonical_zero.seal(&mac_key, 0);
        let shadow_tree = (scheme == SgxScheme::Asit)
            .then(|| ShadowTree::new(config.key, cache.num_slots() as u64));
        let shadow_root = shadow_tree.as_ref().map(|t| t.root()).unwrap_or_default();
        SgxController {
            scheme,
            config: config.clone(),
            layout,
            domain,
            codec: DataCodec::new(config.key),
            mac_key,
            cache,
            top: SgxCounterNode::new(),
            canonical_zero,
            shadow_tree,
            shadow_root,
            pending_shadow_root: None,
            ecc_corrections: 0,
            snapshot_rejected: 0,
            cost: OpCost::zero(),
            totals: CostAccum::default(),
            pending: Vec::new(),
            mac_cache: MacCache::default(),
            seal_jobs: Vec::new(),
            seal_slots: Vec::new(),
            seal_out: Vec::new(),
            telemetry: Telemetry::global(),
            lost_dirty_metadata: false,
        }
    }

    /// Reopens a controller over an existing device image (e.g. a
    /// `FileBackend` replayed from disk after the previous process died).
    ///
    /// The on-chip persistent registers (top counter node,
    /// `SHADOW_TREE_ROOT`) are restored from the register mirrors the
    /// previous incarnation committed alongside each group; the bad-block
    /// remap table is reloaded from its persisted region. The caller must
    /// still run recovery before serving reads.
    ///
    /// A process kill is indistinguishable from a power cut that
    /// destroyed dirty cached metadata, so the write-back family
    /// (write-back, eager write-back, Osiris) reopens with
    /// `lost_dirty_metadata` set and will refuse to recover — only
    /// strict persistence and ASIT survive an unclean restart, exactly
    /// as across an in-process crash.
    ///
    /// A corrupt persisted quarantine table does not fail the reopen; the
    /// controller proceeds with an empty table and the second element
    /// carries [`RecoveryError::CorruptImage`] for
    /// [`crate::Supervisor::repair_then_recover`].
    pub fn reopen(
        scheme: SgxScheme,
        config: &AnubisConfig,
        backend: B,
    ) -> (Self, Option<RecoveryError>) {
        let mut c = Self::assemble(scheme, config, move |layout| {
            PersistenceDomain::with_backend(layout.device_bytes(), backend)
        });
        if let Some(b) = c.domain.reg(REG_TOP) {
            c.top = SgxCounterNode::from_block(&b);
        }
        if let Some(b) = c.domain.reg(REG_SHADOW) {
            c.shadow_root = Root(b.word(0));
        }
        // The volatile shadow-tree interior did not survive the process;
        // ASIT recovery rebuilds it from the persisted Shadow Table and
        // verifies it against the restored register.
        if scheme == SgxScheme::Asit {
            c.shadow_tree = None;
        }
        c.lost_dirty_metadata = matches!(
            scheme,
            SgxScheme::WriteBack | SgxScheme::EagerWriteBack | SgxScheme::Osiris
        );
        let hint = freshness_hint(c.domain.freshness()).or_else(|| c.reload_quarantine_table());
        (c, hint)
    }

    /// Records a snapshot image rejected by the restore path (parse
    /// failure or an epoch behind the sealed anchor) for the
    /// `snapshot_rejected_total` counter.
    pub fn note_snapshot_rejected(&mut self) {
        self.snapshot_rejected += 1;
    }

    /// Restores a captured domain snapshot, refusing one whose epoch is
    /// behind the device's current freshness epoch — a substituted stale
    /// snapshot must never silently replace newer committed state. A
    /// refusal is counted in `snapshot_rejected_total`.
    ///
    /// # Errors
    ///
    /// [`anubis_nvm::NvmError::Snapshot`] with
    /// [`anubis_nvm::SnapshotError::StaleEpoch`] for a rolled-back
    /// snapshot; other [`anubis_nvm::NvmError`]s from the apply itself.
    pub fn restore_snapshot(
        &mut self,
        snap: &anubis_nvm::Snapshot,
    ) -> Result<(), anubis_nvm::NvmError> {
        match self.domain.apply_snapshot(snap) {
            Err(e) => {
                self.note_snapshot_rejected();
                Err(e)
            }
            Ok(()) => Ok(()),
        }
    }

    /// Reloads the persisted bad-block remap table from the qtable
    /// region; returns the corrupt-image hint on parse failure.
    fn reload_quarantine_table(&mut self) -> Option<RecoveryError> {
        let blocks: Vec<Block> = (0..self.layout.qtable_blocks())
            .map(|i| self.domain.device().peek(self.layout.qtable_addr(i)))
            .collect();
        match blocks.first() {
            None => None,
            Some(header) if header.is_zeroed() => None,
            Some(_) => match self.domain.device_mut().load_quarantine_table(&blocks) {
                Ok(()) => None,
                Err(_) => Some(RecoveryError::CorruptImage {
                    what: "quarantine table",
                }),
            },
        }
    }

    /// The scheme this controller runs.
    pub fn scheme(&self) -> SgxScheme {
        self.scheme
    }

    /// The memory layout (for tamper experiments).
    pub fn layout(&self) -> &SgxLayout {
        &self.layout
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnubisConfig {
        &self.config
    }

    /// Combined metadata-cache statistics.
    pub fn cache_stats(&self) -> &anubis_cache::CacheStats {
        self.cache.stats()
    }

    /// Direct access to the persistence domain (tamper API, device stats).
    pub fn domain_mut(&mut self) -> &mut PersistenceDomain<B> {
        &mut self.domain
    }

    /// Read-only access to the persistence domain.
    pub fn domain(&self) -> &PersistenceDomain<B> {
        &self.domain
    }

    /// The on-chip `SHADOW_TREE_ROOT` register (ASIT).
    pub fn shadow_root(&self) -> Root {
        self.shadow_root
    }

    /// Total data words repaired by the SEC-DED decoder (correctable
    /// bit-flip faults absorbed on the read path).
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections
    }

    /// The telemetry handle the controller records spans and counters
    /// through (defaults to the process-global registry).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Publishes current device/cache/controller counters into the
    /// telemetry registry. See [`MemoryController::publish_telemetry`].
    pub fn publish_telemetry(&self) {
        if !self.telemetry.enabled() {
            return;
        }
        let t = &self.telemetry;
        let scheme = self.scheme_name();
        let dev = self.domain.device().stats().snapshot();
        t.counter_set("nvm_reads_total", scheme, dev.reads);
        t.counter_set("nvm_writes_total", scheme, dev.writes);
        t.counter_set(
            "nvm_max_writes_to_one_block",
            scheme,
            dev.max_writes_to_one_block,
        );
        for (region, n) in &dev.writes_by_region {
            t.counter_set("nvm_region_writes_total", region, *n);
        }
        let shadow = dev
            .writes_by_region
            .iter()
            .filter(|(r, _)| *r == "st")
            .map(|(_, n)| *n)
            .sum::<u64>();
        t.counter_set("shadow_table_writes_total", scheme, shadow);
        t.counter_set("persist_writes_total", scheme, self.domain.persist_writes());
        t.counter_set("ecc_corrections_total", scheme, self.ecc_corrections);
        let cache = self.cache.stats();
        t.counter_set("cache_hits_total", "metadata", cache.hits);
        t.counter_set("cache_misses_total", "metadata", cache.misses);
        if let Some(rate) = cache.hit_rate() {
            t.gauge_set("cache_hit_rate", "metadata", rate);
        }
        t.counter_set("cache_hits_total", "mac", self.mac_cache.hits());
        t.counter_set("cache_misses_total", "mac", self.mac_cache.misses());
        let quarantine = self.domain.device().quarantine_table();
        t.gauge_set("quarantined_blocks", scheme, quarantine.len() as f64);
        t.gauge_set(
            "quarantine_spares_left",
            scheme,
            quarantine.spares_left() as f64,
        );
        t.counter_set(
            "quarantine_lost_lines_total",
            scheme,
            quarantine.lost_lines(),
        );
        t.gauge_set("wpq_occupancy", scheme, self.domain.wpq_occupancy() as f64);
        t.gauge_set("wpq_capacity", scheme, self.domain.wpq_capacity() as f64);
        t.counter_set(
            "wal_rejected_total",
            scheme,
            self.domain.device().backend().frames_rejected(),
        );
        t.counter_set("snapshot_rejected_total", scheme, self.snapshot_rejected);
        let rolled_back = matches!(
            self.domain.freshness(),
            anubis_nvm::Freshness::RolledBack { .. }
        );
        t.counter_set("rollback_detected_total", scheme, rolled_back as u64);
    }

    /// Runs post-crash recovery with an explicit lane count, bypassing
    /// the `ANUBIS_RECOVERY_THREADS` resolution in
    /// [`MemoryController::recover`]. `lanes == 1` is the serial path;
    /// any lane count produces a bit-identical [`RecoveryReport`] and
    /// final device state (see [`crate::parallel`]).
    ///
    /// # Errors
    ///
    /// Same classes as [`MemoryController::recover`].
    pub fn recover_with_lanes(&mut self, lanes: usize) -> Result<RecoveryReport, RecoveryError> {
        recovery::recover(self, lanes)
    }

    /// Test/debug hook: every resident metadata node as
    /// `(device address, node, dirty)`.
    #[doc(hidden)]
    pub fn debug_resident(&self) -> Vec<(BlockAddr, SgxCounterNode, bool)> {
        self.cache
            .iter_resident()
            .map(|(_, addr, entry, dirty)| (addr, entry.node, dirty))
            .collect()
    }

    /// Test/debug hook: the slot a resident node occupies.
    #[doc(hidden)]
    pub fn debug_slot_of(&self, addr: BlockAddr) -> Option<u64> {
        self.cache
            .slot_of(addr)
            .map(|s| s.linear(self.cache.ways()) as u64)
    }

    /// Test/debug hook: re-anchors `SHADOW_TREE_ROOT` (and the volatile
    /// shadow tree) to the Shadow Table image currently in NVM, as if
    /// every slot had been written through the normal ST path. Lets
    /// crash-matrix tests stage hand-crafted ST contents that pass the
    /// recovery root check.
    #[doc(hidden)]
    pub fn debug_refresh_shadow_root_from_nvm(&mut self) {
        let st_blocks: Vec<Block> = (0..self.layout.st_slots())
            .map(|s| self.domain.device().read(self.layout.st_slot(s)))
            .collect();
        let tree = ShadowTree::rebuild(self.config.key, st_blocks);
        self.shadow_root = tree.root();
        self.shadow_tree = Some(tree);
    }

    // ------------------------------------------------------------------
    // Cost-counted primitives
    // ------------------------------------------------------------------

    fn nvm_read(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        self.cost.nvm_reads += 1;
        self.read_through(addr)
    }

    fn nvm_read_free(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        self.read_through(addr)
    }

    /// Store-to-load forwarding: the controller must observe writes it has
    /// staged for the current commit group but not yet pushed to the WPQ.
    fn read_through(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        if let Some(op) = self.pending.iter().rev().find(|op| op.addr == addr) {
            return Ok(op.block);
        }
        Ok(self.domain.read(addr)?)
    }

    fn stage(&mut self, addr: BlockAddr, block: Block) {
        self.cost.nvm_writes += 1;
        self.pending.push(WriteOp::new(addr, block));
    }

    fn stage_free(&mut self, addr: BlockAddr, block: Block) {
        self.pending.push(WriteOp::new(addr, block));
    }

    /// Stages a data-line seal for the current commit group without
    /// computing it yet: placeholder ciphertext/side ops hold the group
    /// positions, and [`resolve_seals`](Self::resolve_seals) fills them
    /// in at commit time through the batch crypto path.
    fn stage_sealed(&mut self, dev: BlockAddr, side_addr: BlockAddr, iv: IvCounter, data: Block) {
        self.cost.hash_ops += 2; // pad + MAC
        let data_idx = self.pending.len();
        self.stage(dev, Block::zeroed());
        let side_idx = self.pending.len();
        self.stage_free(side_addr, Block::zeroed());
        self.seal_jobs.push((dev, iv, data));
        self.seal_slots.push((data_idx, side_idx));
    }

    /// Seals every deferred data line of the current group in one batch
    /// and patches the placeholder ops. Also primes the MAC cache: a
    /// freshly sealed line is by construction MAC-verified.
    fn resolve_seals(&mut self) {
        if self.seal_jobs.is_empty() {
            return;
        }
        self.codec
            .seal_batch_into(&self.seal_jobs, &mut self.seal_out);
        for (((dev, iv, _), (data_idx, side_idx)), sealed) in self
            .seal_jobs
            .iter()
            .zip(&self.seal_slots)
            .zip(&self.seal_out)
        {
            self.pending[*data_idx].block = sealed.ciphertext;
            let mut side = Block::zeroed();
            side.set_word(0, sealed.ecc);
            side.set_word(1, sealed.mac);
            self.pending[*side_idx].block = side;
            self.codec
                .note_sealed(&mut self.mac_cache, *dev, *iv, sealed);
        }
        self.seal_jobs.clear();
        self.seal_slots.clear();
    }

    fn commit(&mut self) -> Result<(), MemError> {
        self.resolve_seals();
        let result = if self.pending.is_empty() {
            Ok(())
        } else {
            let ops = std::mem::take(&mut self.pending);
            let regs = self.reg_mirrors();
            self.domain
                .commit_group_with_regs(ops, &regs)
                .map_err(MemError::from)
        };
        // The SHADOW_TREE_ROOT register update rides the commit: atomic
        // with the ST writes from the hardware's perspective. A power cut
        // mid-drain leaves the group in the persistent REDO registers, so
        // its ST writes are replayed at power-up — the on-chip root must
        // move with them (a torn group that discards the REDO log instead
        // surfaces at recovery as ShadowTableTampered).
        match &result {
            Ok(()) | Err(MemError::Nvm(anubis_nvm::NvmError::PowerLost)) => {
                if let Some(root) = self.pending_shadow_root.take() {
                    self.shadow_root = root;
                }
            }
            Err(_) => {}
        }
        result
    }

    /// Backend mirrors of the on-chip persistent registers, committed
    /// (and made durable) with every group so a restart can restore them
    /// via [`SgxController::reopen`]. The shadow-root mirror carries the
    /// value the register will hold once this commit lands
    /// (`pending_shadow_root`), keeping the durable mirror atomic with
    /// the ST writes it protects — the same barrier acks both.
    fn reg_mirrors(&self) -> [(u8, Block); 2] {
        let mut shadow = Block::zeroed();
        let root = self.pending_shadow_root.unwrap_or(self.shadow_root);
        shadow.set_word(0, root.0);
        [(REG_TOP, self.top.to_block()), (REG_SHADOW, shadow)]
    }

    // ------------------------------------------------------------------
    // Parent-counter plumbing
    // ------------------------------------------------------------------

    /// The parent version counter for `node`, from the cache if the
    /// parent is resident, from the on-chip register for top-level
    /// children, or from NVM otherwise (charged as a read).
    fn parent_counter(&mut self, node: NodeId) -> Result<u64, MemError> {
        let g = self.layout.geometry().clone();
        let Some(parent) = g.parent(node) else {
            // `node` *is* the top node: versioned by an implicit constant.
            return Ok(0);
        };
        let slot = g.child_slot(node);
        if self.layout.is_on_chip(parent) {
            return Ok(self.top.counter(slot));
        }
        let p_addr = self.layout.node_addr(parent);
        if let Some(entry) = self.cache.peek(p_addr) {
            return Ok(entry.node.counter(slot));
        }
        // Not resident: NVM copy is current (lazy scheme invariant — a
        // parent counter only changes when this child is written back,
        // which marks the parent dirty and resident).
        let block = self.nvm_read(p_addr)?;
        Ok(SgxCounterNode::from_block(&block).counter(slot))
    }

    /// Bumps the parent's version counter for `node` (the writeback rule:
    /// every writeback of a node increments its parent counter so stale
    /// copies cannot be replayed). Returns the new counter value.
    ///
    /// Deliberately does **not** pull missing parents into the cache:
    /// inserting mid-eviction could evict further dirty nodes and re-fetch
    /// the very node being written back while its update is still in
    /// flight. A non-resident parent is instead read, bumped, re-sealed
    /// (recursively bumping *its* parent) and written straight back —
    /// recursion is strictly upward and bounded by the tree height.
    fn bump_parent_counter(&mut self, node: NodeId) -> Result<u64, MemError> {
        let g = self.layout.geometry().clone();
        let Some(parent) = g.parent(node) else {
            return Ok(0);
        };
        let slot = g.child_slot(node);
        if self.layout.is_on_chip(parent) {
            self.top.increment(slot);
            return Ok(self.top.counter(slot));
        }
        let p_addr = self.layout.node_addr(parent);
        if self.cache.contains(p_addr) {
            let new = {
                let entry = self.cache.peek_mut(p_addr).expect("checked resident");
                entry.node.increment(slot);
                entry.node.counter(slot)
            };
            let first_mod = self.cache.mark_dirty(p_addr);
            self.after_update_hooks(parent, first_mod)?;
            return Ok(new);
        }
        // Non-resident parent: its NVM copy is current (lazy invariant).
        let block = self.nvm_read(p_addr)?;
        let mut p_node = if block.is_zeroed() {
            self.canonical_zero
        } else {
            SgxCounterNode::from_block(&block)
        };
        let pc_check = self.parent_counter(parent)?;
        self.cost.hash_ops += 1;
        if !p_node.verify(&self.mac_key, pc_check) {
            return Err(MemError::Integrity {
                node: parent,
                against: IntegrityWitness::NodeMac,
            });
        }
        p_node.increment(slot);
        // Writing the parent back is itself a writeback: bump upward.
        let pc_new = self.bump_parent_counter(parent)?;
        p_node.seal(&self.mac_key, pc_new);
        self.cost.hash_ops += 1;
        self.stage(p_addr, p_node.to_block());
        Ok(p_node.counter(slot))
    }

    // ------------------------------------------------------------------
    // Scheme hooks
    // ------------------------------------------------------------------

    /// Runs after any update to a cached node: ASIT shadow-table write
    /// (every update), Osiris stop-loss persistence, LSB-overflow
    /// persistence.
    fn after_update_hooks(&mut self, node: NodeId, _first_mod: bool) -> Result<(), MemError> {
        match self.scheme {
            SgxScheme::Asit => {
                self.stage_st_entry(node)?;
                self.maybe_persist_on_lsb_overflow(node)?;
            }
            SgxScheme::Osiris => {
                let addr = self.layout.node_addr(node);
                let persist = {
                    let entry = self.cache.peek_mut(addr).expect("resident");
                    entry.since_persist = entry.since_persist.saturating_add(1);
                    if entry.since_persist >= self.config.stop_loss {
                        entry.since_persist = 0;
                        true
                    } else {
                        false
                    }
                };
                if persist {
                    self.writeback_node(node)?;
                }
            }
            SgxScheme::WriteBack | SgxScheme::EagerWriteBack | SgxScheme::StrictPersist => {}
        }
        Ok(())
    }

    /// Stages the ST entry for a resident node and eagerly updates the
    /// shadow-protection tree (root installed at commit).
    fn stage_st_entry(&mut self, node: NodeId) -> Result<(), MemError> {
        let addr = self.layout.node_addr(node);
        let pc = self.parent_counter(node)?;
        let (counters, slot) = {
            let entry = self.cache.peek(addr).expect("ST entry for resident node");
            let mut cs = [0u64; SGX_COUNTERS_PER_NODE];
            for (i, c) in cs.iter_mut().enumerate() {
                *c = entry.node.counter(i);
            }
            let slot = self
                .cache
                .slot_of(addr)
                .expect("resident")
                .linear(self.cache.ways()) as u64;
            (cs, slot)
        };
        self.cost.hash_ops += 1;
        let mac = SgxCounterNode::compute_mac(&self.mac_key, &counters, pc);
        let lsb_mask = (1u64 << self.config.st_lsb_bits) - 1;
        let lsbs = counters.map(|c| c & lsb_mask);
        let entry = StEntry::new(addr, mac, lsbs);
        let st_addr = self.layout.st_slot(slot);
        self.stage(st_addr, entry.to_block());
        let tree = self.shadow_tree.as_mut().expect("ASIT has a shadow tree");
        // The shadow-protection tree is maintained by a dedicated on-chip
        // engine off the data path.
        self.cost.bg_hash_ops += tree.update_hash_ops();
        let root = tree.update(slot, entry.to_block());
        self.pending_shadow_root = Some(root);
        Ok(())
    }

    /// Persists a node whose counter LSBs just wrapped past the ST field
    /// width, so recovery's MSB-splice stays correct (paper §4.3.1).
    fn maybe_persist_on_lsb_overflow(&mut self, node: NodeId) -> Result<(), MemError> {
        let addr = self.layout.node_addr(node);
        let lsb_mask = (1u64 << self.config.st_lsb_bits) - 1;
        let wrapped = {
            let entry = self.cache.peek(addr).expect("resident");
            (0..SGX_COUNTERS_PER_NODE)
                .any(|i| entry.node.counter(i) & lsb_mask == 0 && entry.node.counter(i) != 0)
        };
        if wrapped {
            self.writeback_node(node)?;
        }
        Ok(())
    }

    /// Writes a resident node back to NVM without evicting it: bumps the
    /// parent counter, seals, stages the write, and (ASIT) refreshes the
    /// node's ST entry so the shadow copy matches the NVM copy.
    fn writeback_node(&mut self, node: NodeId) -> Result<(), MemError> {
        let addr = self.layout.node_addr(node);
        let pc = self.bump_parent_counter(node)?;
        let sealed = {
            let entry = self
                .cache
                .peek_mut(addr)
                .expect("resident during writeback");
            entry.node.seal(&self.mac_key, pc);
            entry.node
        };
        self.cost.hash_ops += 1;
        self.stage(addr, sealed.to_block());
        self.cache.mark_clean(addr);
        if self.scheme == SgxScheme::Asit {
            self.stage_st_entry(node)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Verified fetch and eviction
    // ------------------------------------------------------------------

    /// Ensures `node` is resident and MAC-verified, fetching the missing
    /// chain up to the first cached ancestor (or the on-chip top node).
    fn ensure_node(&mut self, node: NodeId) -> Result<(), MemError> {
        debug_assert!(
            !self.layout.is_on_chip(node),
            "the top node is always on-chip"
        );
        // One lookup records the hit/miss; retries use `contains` so a
        // thrash-retry doesn't double-count.
        if self.cache.lookup(self.layout.node_addr(node)).is_some() {
            return Ok(());
        }
        for _attempt in 0..12 {
            if self.cache.contains(self.layout.node_addr(node)) {
                return Ok(());
            }
            self.fetch_chain(node)?;
        }
        panic!("metadata cache thrashing: cannot keep {node} resident");
    }

    fn fetch_chain(&mut self, node: NodeId) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(p) = g.parent(cur) {
            if self.layout.is_on_chip(p) || self.cache.contains(self.layout.node_addr(p)) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        for n in chain.into_iter().rev() {
            let addr = self.layout.node_addr(n);
            if self.cache.contains(addr) {
                continue; // an eviction cascade may have fetched it already
            }
            let block = self.nvm_read(addr)?;
            let fetched = if block.is_zeroed() {
                // Never-written node: canonical zero state (a real node's
                // MAC is zero only with probability 2^-56).
                self.canonical_zero
            } else {
                SgxCounterNode::from_block(&block)
            };
            let pc = self.parent_counter(n)?;
            self.cost.hash_ops += 1;
            if !fetched.verify(&self.mac_key, pc) {
                return Err(MemError::Integrity {
                    node: n,
                    against: IntegrityWitness::NodeMac,
                });
            }
            self.insert_node(n, fetched)?;
        }
        Ok(())
    }

    /// Inserts a verified node, handling the displaced victim (lazy
    /// propagation: dirty victims bump their parent counter, seal, write
    /// back, and refresh their ST entry).
    fn insert_node(&mut self, node: NodeId, value: SgxCounterNode) -> Result<(), MemError> {
        let addr = self.layout.node_addr(node);
        let outcome = self.cache.insert(
            addr,
            SgxEntry {
                node: value,
                since_persist: 0,
            },
        );
        if let Some(ev) = outcome.evicted {
            if ev.dirty {
                let victim = self
                    .layout
                    .node_of_addr(ev.addr)
                    .expect("cache keys are metadata addresses");
                // Clear the victim's ST slot *before* bumping its parent:
                // the slot now belongs to the freshly inserted node, and
                // if that node happens to BE the victim's parent, the bump
                // below writes the parent's new ST entry into this very
                // slot — clearing afterwards would wipe it, leaving a
                // dirty resident node untracked (unrecoverable bump).
                if self.scheme == SgxScheme::Asit {
                    self.clear_st_slot(ev.slot.linear(self.cache.ways()) as u64);
                }
                let pc = self.bump_parent_counter(victim)?;
                let mut sealed = ev.value.node;
                sealed.seal(&self.mac_key, pc);
                self.cost.hash_ops += 1;
                self.stage(ev.addr, sealed.to_block());
            }
        }
        Ok(())
    }

    /// Clears the ST slot of an evicted dirty node. The eviction writeback
    /// makes the NVM copy current, so the entry is no longer needed — and
    /// keeping it would let a later *non-resident* writeback (the upward
    /// counter cascade) silently invalidate its MAC. Invariant: ST entries
    /// exist only for currently resident nodes (see DESIGN.md).
    fn clear_st_slot(&mut self, slot: u64) {
        let st_addr = self.layout.st_slot(slot);
        self.stage(st_addr, Block::zeroed());
        let tree = self.shadow_tree.as_mut().expect("ASIT has a shadow tree");
        self.cost.bg_hash_ops += tree.update_hash_ops();
        let root = tree.update(slot, Block::zeroed());
        self.pending_shadow_root = Some(root);
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn validate(&self, addr: DataAddr) -> Result<(), MemError> {
        if addr.index() < self.layout.data_blocks() {
            Ok(())
        } else {
            Err(MemError::OutOfRange {
                addr,
                capacity_blocks: self.layout.data_blocks(),
            })
        }
    }

    fn begin_op(&mut self) {
        self.cost = OpCost::zero();
        self.pending.clear();
        self.pending_shadow_root = None;
        self.seal_jobs.clear();
        self.seal_slots.clear();
    }

    /// Body of one logical write: counter bump, scheme-specific
    /// propagation and the (deferred) data seal. The caller owns
    /// `begin_op`, the final `commit` and the cost recording, so scalar
    /// `write` and grouped `write_batch` share it.
    fn write_inner(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError> {
        let (leaf, slot) = self.layout.leaf_of(addr);
        let ctr = if self.layout.is_on_chip(leaf) {
            // Degenerate single-leaf tree: counters live in the persistent
            // on-chip register — no cache, no shadowing, no propagation.
            self.top.increment(slot);
            self.top.counter(slot)
        } else {
            self.ensure_node(leaf)?;
            let leaf_addr = self.layout.node_addr(leaf);
            let ctr = {
                let entry = self.cache.peek_mut(leaf_addr).expect("ensured");
                entry.node.increment(slot);
                entry.node.counter(slot)
            };
            let first_mod = self.cache.mark_dirty(leaf_addr);
            self.after_update_hooks(leaf, first_mod)?;
            if self.scheme == SgxScheme::StrictPersist {
                self.strict_propagate(leaf)?;
            }
            if self.scheme == SgxScheme::EagerWriteBack {
                self.eager_propagate(leaf)?;
            }
            ctr
        };
        // Stage the data seal; the crypto itself is deferred to commit
        // time, where the whole group goes through the batch seal path.
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        self.stage_sealed(dev, side_addr, IvCounter::monolithic(ctr), data);
        Ok(())
    }

    /// The strict-persistence write path: eagerly bump and persist the
    /// whole path (every node sealed against its just-bumped parent).
    fn strict_propagate(&mut self, leaf: NodeId) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        let mut node = leaf;
        loop {
            let pc = self.bump_parent_counter(node)?;
            let addr = self.layout.node_addr(node);
            let sealed = {
                let entry = self.cache.peek_mut(addr).expect("resident");
                entry.node.seal(&self.mac_key, pc);
                entry.node
            };
            self.cost.hash_ops += 1;
            self.stage(addr, sealed.to_block());
            self.cache.mark_clean(addr);
            match g.parent(node) {
                Some(p) if !self.layout.is_on_chip(p) => {
                    self.ensure_node(p)?;
                    node = p;
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Eager in-cache propagation (no persistence): bump every ancestor's
    /// version counter and re-seal each node against its new parent
    /// counter, keeping everything dirty in the cache. The on-chip top
    /// node is always fresh — and yet a crash still loses the interior
    /// (paper §2.6: eager update is insufficient for SGX-style trees).
    fn eager_propagate(&mut self, leaf: NodeId) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        let mut node = leaf;
        loop {
            let pc = self.bump_parent_counter(node)?;
            let addr = self.layout.node_addr(node);
            {
                let entry = self.cache.peek_mut(addr).expect("resident on the path");
                entry.node.seal(&self.mac_key, pc);
            }
            self.cost.hash_ops += 1;
            self.cache.mark_dirty(addr);
            match g.parent(node) {
                Some(p) if !self.layout.is_on_chip(p) => {
                    self.ensure_node(p)?;
                    node = p;
                }
                _ => break,
            }
        }
        Ok(())
    }
}

impl<B: NvmBackend> MemoryController for SgxController<B> {
    type Backend = B;

    fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    fn domain(&self) -> &PersistenceDomain<B> {
        &self.domain
    }

    fn domain_mut(&mut self) -> &mut PersistenceDomain<B> {
        &mut self.domain
    }

    fn read(&mut self, addr: DataAddr) -> Result<Block, MemError> {
        self.validate(addr)?;
        self.begin_op();
        let (leaf, slot) = self.layout.leaf_of(addr);
        // Degenerate single-leaf tree: the leaf IS the on-chip top node.
        let ctr = if self.layout.is_on_chip(leaf) {
            self.top.counter(slot)
        } else {
            self.ensure_node(leaf)?;
            self.cache
                .peek(self.layout.node_addr(leaf))
                .expect("ensured")
                .node
                .counter(slot)
        };
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        let result = if ctr == 0 {
            let stored = self.nvm_read(dev)?;
            let side = self.nvm_read_free(side_addr)?;
            if stored.is_zeroed() && side.is_zeroed() {
                Ok(Block::zeroed())
            } else {
                Err(MemError::Crypto(
                    anubis_crypto::CryptoError::DataMacMismatch,
                ))
            }
        } else {
            let ciphertext = self.nvm_read(dev)?;
            let side = self.nvm_read_free(side_addr)?;
            let sealed = anubis_crypto::SealedBlock {
                ciphertext,
                ecc: side.word(0),
                mac: side.word(1),
            };
            self.cost.hash_ops += 2;
            match self.codec.open_correcting_cached(
                &mut self.mac_cache,
                dev,
                IvCounter::monolithic(ctr),
                &sealed,
            ) {
                Ok((pt, fixed)) => {
                    self.ecc_corrections += u64::from(fixed);
                    Ok(pt)
                }
                Err(e) => Err(MemError::from(e)),
            }
        };
        let value = result?;
        self.commit()?;
        self.totals.record(false, self.cost);
        Ok(value)
    }

    fn write(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError> {
        self.validate(addr)?;
        self.begin_op();
        self.write_inner(addr, data)?;
        self.commit()?;
        self.totals.record(true, self.cost);
        Ok(())
    }

    fn write_batch(&mut self, items: &[(DataAddr, Block)]) -> Result<(), MemError> {
        for (addr, _) in items {
            self.validate(*addr)?;
        }
        self.begin_op();
        for (addr, data) in items {
            self.cost = OpCost::zero();
            self.write_inner(*addr, *data)?;
            // Flush before the accumulated group can overrun the persist
            // queue's `PREG_CAPACITY`.
            if self.pending.len() >= crate::GROUP_FLUSH_WATERMARK {
                self.commit()?;
            }
            self.totals.record(true, self.cost);
        }
        self.commit()
    }

    fn crash(&mut self) {
        self.domain.power_fail();
        self.lost_dirty_metadata = self.cache.iter_resident().any(|(_, _, _, dirty)| dirty);
        self.cache.invalidate_all();
        self.pending.clear();
        self.pending_shadow_root = None;
        self.seal_jobs.clear();
        self.seal_slots.clear();
        // MAC-verification cache is volatile state: it dies with power.
        self.mac_cache.clear();
        // Volatile shadow-tree interior is lost; rebuilt during recovery.
        if self.scheme == SgxScheme::Asit {
            self.shadow_tree = None;
        }
        // `top` and `shadow_root` are on-chip persistent registers: kept.
    }

    fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        recovery::recover(self, crate::parallel::recovery_lanes())
    }

    fn shutdown_flush(&mut self) -> Result<(), MemError> {
        self.begin_op();
        // Write back every dirty node, deepest levels first so parent
        // counter bumps target still-resident parents coherently.
        loop {
            let next = self
                .cache
                .iter_resident()
                .filter(|(_, _, _, dirty)| *dirty)
                .map(|(_, addr, _, _)| addr)
                .min_by_key(|addr| {
                    self.layout
                        .node_of_addr(*addr)
                        .map(|n| n.level)
                        .unwrap_or(usize::MAX)
                });
            let Some(addr) = next else { break };
            let node = self.layout.node_of_addr(addr).expect("metadata address");
            self.writeback_node(node)?;
            self.commit()?;
        }
        self.commit()?;
        self.domain.drain_wpq();
        Ok(())
    }

    fn last_cost(&self) -> OpCost {
        self.cost
    }

    fn total_cost(&self) -> &CostAccum {
        &self.totals
    }

    fn reset_costs(&mut self) {
        self.totals.reset();
        self.cache.reset_stats();
        self.domain.device_mut().reset_stats();
    }

    fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    fn publish_telemetry(&self) {
        Self::publish_telemetry(self);
    }
}
