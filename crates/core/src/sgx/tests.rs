//! Unit tests for the SGX-style controller family.

use super::*;
use crate::MemoryController;

fn cfg() -> AnubisConfig {
    AnubisConfig::small_test()
}

fn controller(scheme: SgxScheme) -> SgxController {
    SgxController::new(scheme, &cfg())
}

fn pattern(i: u64) -> Block {
    Block::from_words([
        i,
        !i,
        i * 5,
        i + 1,
        i << 4,
        i ^ 0xF0F0,
        i.rotate_right(9),
        7,
    ])
}

#[test]
fn fresh_memory_reads_zero() {
    for scheme in SgxScheme::all() {
        let mut c = controller(scheme);
        assert_eq!(
            c.read(DataAddr::new(0)).unwrap(),
            Block::zeroed(),
            "{}",
            scheme.name()
        );
        assert_eq!(c.read(DataAddr::new(9999)).unwrap(), Block::zeroed());
    }
}

#[test]
fn write_read_roundtrip_all_schemes() {
    for scheme in SgxScheme::all() {
        let mut c = controller(scheme);
        for i in 0..60u64 {
            c.write(DataAddr::new(i * 31 % 3000), pattern(i)).unwrap();
        }
        for i in 0..60u64 {
            let addr = i * 31 % 3000;
            let last = (0..60u64).filter(|j| j * 31 % 3000 == addr).max().unwrap();
            assert_eq!(
                c.read(DataAddr::new(addr)).unwrap(),
                pattern(last),
                "{} addr {addr}",
                scheme.name()
            );
        }
    }
}

#[test]
fn out_of_range_rejected() {
    let mut c = controller(SgxScheme::Asit);
    let cap = c.layout().data_blocks();
    assert!(matches!(
        c.read(DataAddr::new(cap)),
        Err(MemError::OutOfRange { .. })
    ));
}

#[test]
fn single_bit_data_flip_corrected() {
    // One flipped ciphertext bit is repaired by the SEC-DED decoder and
    // the MAC re-verifies; multi-bit damage in one word stays detected.
    let mut c = controller(SgxScheme::Asit);
    let a = DataAddr::new(3);
    c.write(a, pattern(1)).unwrap();
    c.domain_mut().drain_wpq();
    let dev = c.layout().data_addr(a);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 17);
    assert_eq!(c.read(a).unwrap(), pattern(1));
    assert_eq!(c.ecc_corrections(), 1);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 18);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 19);
    assert!(matches!(c.read(a), Err(MemError::Crypto(_))));
}

#[test]
fn leaf_replay_detected_on_fetch() {
    // Roll a leaf back to an old (validly MACed) NVM value after its
    // parent counter advanced: the fetch MAC check must fail.
    let mut c = controller(SgxScheme::WriteBack);
    let a = DataAddr::new(5);
    c.write(a, pattern(1)).unwrap();
    c.shutdown_flush().unwrap(); // leaf sealed+written, parent bumped
    let (leaf, _) = c.layout().leaf_of(a);
    let leaf_addr = c.layout().node_addr(leaf);
    let old = c.domain_mut().device_mut().peek(leaf_addr);
    // Advance state: another write + flush bumps the parent counter again.
    c.write(a, pattern(2)).unwrap();
    c.shutdown_flush().unwrap();
    c.cache.invalidate_all();
    c.domain_mut().device_mut().tamper_replay(leaf_addr, old);
    assert!(matches!(c.read(a), Err(MemError::Integrity { .. })));
}

#[test]
fn interior_node_tamper_detected() {
    let mut c = controller(SgxScheme::WriteBack);
    c.write(DataAddr::new(0), pattern(1)).unwrap();
    c.shutdown_flush().unwrap();
    c.cache.invalidate_all();
    let node = anubis_itree::NodeId::new(1, 0);
    let addr = c.layout().node_addr(node);
    c.domain_mut().device_mut().tamper_flip_bit(addr, 100);
    assert!(matches!(
        c.read(DataAddr::new(0)),
        Err(MemError::Integrity { .. })
    ));
}

#[test]
fn graceful_shutdown_then_recover_all_schemes() {
    for scheme in SgxScheme::all() {
        let mut c = controller(scheme);
        for i in 0..40u64 {
            c.write(DataAddr::new(i * 3), pattern(i)).unwrap();
        }
        c.shutdown_flush().unwrap();
        c.crash();
        let r = c.recover();
        assert!(r.is_ok(), "{}: {r:?}", scheme.name());
        for i in 0..40u64 {
            assert_eq!(
                c.read(DataAddr::new(i * 3)).unwrap(),
                pattern(i),
                "{}",
                scheme.name()
            );
        }
    }
}

#[test]
fn asit_crash_recovery_restores_cache_state() {
    let mut c = controller(SgxScheme::Asit);
    for i in 0..80u64 {
        c.write(DataAddr::new(i * 17 % 900), pattern(i)).unwrap();
    }
    c.crash();
    let report = c.recover().unwrap();
    assert!(report.nodes_fixed > 0, "dirty nodes must be restored");
    assert!(report.nvm_reads >= c.layout().st_slots(), "full ST scan");
    for i in 0..80u64 {
        let addr = i * 17 % 900;
        let last = (0..80u64).filter(|j| j * 17 % 900 == addr).max().unwrap();
        assert_eq!(
            c.read(DataAddr::new(addr)).unwrap(),
            pattern(last),
            "addr {addr}"
        );
    }
}

#[test]
fn asit_recovery_is_cache_sized_not_memory_sized() {
    let mut c = controller(SgxScheme::Asit);
    for i in 0..50u64 {
        c.write(DataAddr::new(i), pattern(i)).unwrap();
    }
    c.crash();
    let report = c.recover().unwrap();
    let st = c.layout().st_slots();
    // Scan + shadow rebuild + per-entry work: comfortably below data size.
    assert!(report.nvm_reads < st * 4);
    assert!(report.nvm_reads < c.layout().data_blocks());
}

#[test]
fn writeback_and_osiris_cannot_recover_sgx_tree() {
    for scheme in [SgxScheme::WriteBack, SgxScheme::Osiris] {
        let mut c = controller(scheme);
        for i in 0..30u64 {
            c.write(DataAddr::new(i), pattern(i)).unwrap();
        }
        c.crash();
        assert!(
            matches!(c.recover(), Err(RecoveryError::SchemeCannotRecover { .. })),
            "{} must fail",
            scheme.name()
        );
    }
}

#[test]
fn strict_persist_recovers_after_crash() {
    let mut c = controller(SgxScheme::StrictPersist);
    for i in 0..30u64 {
        c.write(DataAddr::new(i * 7), pattern(i)).unwrap();
    }
    c.crash();
    c.recover().unwrap();
    for i in 0..30u64 {
        assert_eq!(c.read(DataAddr::new(i * 7)).unwrap(), pattern(i));
    }
}

#[test]
fn tampered_shadow_table_detected() {
    let mut c = controller(SgxScheme::Asit);
    for i in 0..20u64 {
        c.write(DataAddr::new(i), pattern(i)).unwrap();
    }
    c.crash();
    // Flip one bit anywhere in the ST region.
    let st0 = c.layout().st_slot(0);
    // Find a nonzero slot to make the tamper meaningful; fall back to 0.
    let mut target = st0;
    for s in 0..c.layout().st_slots() {
        let a = c.layout().st_slot(s);
        if !c.domain().device().peek(a).is_zeroed() {
            target = a;
            break;
        }
    }
    c.domain_mut().device_mut().tamper_flip_bit(target, 5);
    assert_eq!(c.recover(), Err(RecoveryError::ShadowTableTampered));
}

#[test]
fn tampered_stale_node_msbs_detected_after_recovery() {
    // Attack the MSBs recovery takes from NVM: the spliced node's MAC
    // (from the ST) must then fail verification.
    let small_lsb = cfg().with_st_lsb_bits(8);
    let mut c = SgxController::new(SgxScheme::Asit, &small_lsb);
    let a = DataAddr::new(0);
    // Push the counter past 255 so the MSBs are nonzero and *current* in
    // NVM (each LSB wrap forces a persist).
    for i in 0..300u64 {
        c.write(a, pattern(i)).unwrap();
    }
    c.crash();
    let (leaf, _) = c.layout().leaf_of(a);
    let leaf_addr = c.layout().node_addr(leaf);
    // Flip an MSB bit of counter 0 (byte 1 of the 7-byte field = bit 8+).
    c.domain_mut().device_mut().tamper_flip_bit(leaf_addr, 9);
    assert!(matches!(
        c.recover(),
        Err(RecoveryError::NodeMacMismatch { .. }) | Err(RecoveryError::ShadowTableTampered)
    ));
}

#[test]
fn lsb_overflow_forces_node_persistence() {
    let small_lsb = cfg().with_st_lsb_bits(4); // wraps every 16 increments
    let mut c = SgxController::new(SgxScheme::Asit, &small_lsb);
    let a = DataAddr::new(0);
    for i in 0..40u64 {
        c.write(a, pattern(i)).unwrap();
    }
    c.domain_mut().drain_wpq();
    let (leaf, slot) = c.layout().leaf_of(a);
    let nvm = anubis_crypto::SgxCounterNode::from_block(&{
        let a = c.layout().node_addr(leaf);
        c.domain_mut().device_mut().read(a)
    });
    // NVM MSBs must be current: counter 40 has MSB part 32 (wrap at 32).
    assert!(
        nvm.counter(slot) >= 32,
        "persist on LSB wrap keeps MSBs fresh"
    );
    // And the full cycle still recovers.
    c.crash();
    c.recover().unwrap();
    assert_eq!(c.read(a).unwrap(), pattern(39));
}

#[test]
fn asit_extra_writes_are_about_one_per_data_write() {
    // Cache-friendly working set (no eviction churn): the steady-state
    // cost the paper quotes — one ST write per data write.
    let mut c = controller(SgxScheme::Asit);
    for i in 0..400u64 {
        c.write(DataAddr::new(i % 100), pattern(i)).unwrap();
    }
    let amp = c.total_cost().writes_per_data_write().unwrap();
    assert!((1.8..2.6).contains(&amp), "ASIT write amplification {amp}");
}

#[test]
fn strict_writes_much_more_than_asit() {
    let amp = |scheme| {
        let mut c = controller(scheme);
        for i in 0..300u64 {
            c.write(DataAddr::new(i * 11 % 2000), pattern(i)).unwrap();
        }
        c.total_cost().writes_per_data_write().unwrap()
    };
    let strict = amp(SgxScheme::StrictPersist);
    let asit = amp(SgxScheme::Asit);
    let wb = amp(SgxScheme::WriteBack);
    assert!(strict > asit, "strict {strict} vs asit {asit}");
    assert!(asit > wb, "asit {asit} vs wb {wb}");
}

#[test]
fn repeated_crash_recover_cycles() {
    let mut c = controller(SgxScheme::Asit);
    for round in 0..4u64 {
        for i in 0..25u64 {
            c.write(DataAddr::new(i * 5), pattern(round * 100 + i))
                .unwrap();
        }
        c.crash();
        c.recover().unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    for i in 0..25u64 {
        assert_eq!(c.read(DataAddr::new(i * 5)).unwrap(), pattern(300 + i));
    }
}

#[test]
fn shadow_root_register_tracks_commits() {
    let mut c = controller(SgxScheme::Asit);
    let r0 = c.shadow_root();
    c.write(DataAddr::new(0), pattern(1)).unwrap();
    assert_ne!(c.shadow_root(), r0, "register advances with the commit");
}

#[test]
fn eager_update_is_insufficient_for_sgx_trees() {
    // Paper §2.6: even with every write propagated to the on-chip top
    // node (root perfectly fresh), losing dirty interior nodes makes the
    // tree unrecoverable — only shadowing the cache *contents* (ASIT)
    // helps. The eager variant must behave correctly while powered and
    // still fail recovery after a dirty-loss crash.
    let mut c = controller(SgxScheme::EagerWriteBack);
    for i in 0..40u64 {
        c.write(DataAddr::new(i * 5 % 600), pattern(i)).unwrap();
    }
    for i in 0..40u64 {
        let addr = i * 5 % 600;
        let last = (0..40u64).filter(|j| j * 5 % 600 == addr).max().unwrap();
        assert_eq!(c.read(DataAddr::new(addr)).unwrap(), pattern(last));
    }
    c.crash();
    assert!(matches!(
        c.recover(),
        Err(RecoveryError::SchemeCannotRecover { .. })
    ));
}

#[test]
fn eager_variant_recovers_after_clean_shutdown() {
    let mut c = controller(SgxScheme::EagerWriteBack);
    for i in 0..30u64 {
        c.write(DataAddr::new(i), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    c.crash();
    c.recover().expect("nothing dirty was lost");
    for i in 0..30u64 {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), pattern(i));
    }
}

#[test]
fn all_with_extras_lists_five_schemes() {
    let schemes = SgxScheme::all_with_extras();
    assert_eq!(schemes.len(), 5);
    let mut names: Vec<_> = schemes.iter().map(|s| s.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 5);
}

#[test]
fn asit_recovery_is_idempotent() {
    let mut c = controller(SgxScheme::Asit);
    for i in 0..60u64 {
        c.write(DataAddr::new(i * 3 % 500), pattern(i)).unwrap();
    }
    c.crash();
    let r1 = c.recover().unwrap();
    assert!(r1.nodes_fixed > 0);
    // Immediate second crash: the normalized Shadow Table must recover
    // the same state again without error.
    c.crash();
    let r2 = c.recover().unwrap();
    assert!(r2.nodes_fixed <= r1.nodes_fixed + 1);
    for i in 0..60u64 {
        let addr = i * 3 % 500;
        let last = (0..60u64).filter(|j| j * 3 % 500 == addr).max().unwrap();
        assert_eq!(c.read(DataAddr::new(addr)).unwrap(), pattern(last));
    }
}

#[test]
fn single_leaf_sgx_memory_works() {
    let tiny = cfg().with_capacity(512); // 8 lines -> one leaf, 1-level tree
    let mut c = SgxController::new(SgxScheme::Asit, &tiny);
    assert_eq!(c.layout().geometry().num_levels(), 1);
    for i in 0..8u64 {
        c.write(DataAddr::new(i), pattern(i)).unwrap();
    }
    c.crash();
    c.recover().unwrap();
    for i in 0..8u64 {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), pattern(i));
    }
}

#[test]
fn lazy_propagation_reaches_top_register_on_flush() {
    // After shutdown_flush, every dirty node was written back, so the
    // on-chip top node's counters must account for every writeback of its
    // children — nonzero once enough traffic flowed.
    let mut c = controller(SgxScheme::Asit);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 97 % 4000), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    let top_sum: u64 = (0..8).map(|i| c.top.counter(i)).sum();
    assert!(
        top_sum > 0,
        "writebacks must have propagated to the on-chip top node"
    );
    // And the fully-persisted tree verifies from a cold cache.
    c.cache.invalidate_all();
    for i in [0u64, 1111, 3999] {
        assert!(c.read(DataAddr::new(i)).is_ok());
    }
}

#[test]
fn parent_fetch_evicting_own_child_keeps_parent_tracked() {
    // Regression: inserting a parent node can evict its own dirty child;
    // the victim-handling bumps the parent (tracking it at its new slot —
    // the slot the child just vacated) and must NOT then clear that slot.
    // The 185-op prefix of this workload deterministically hits the case
    // at small_test geometry.
    let mut c = controller(SgxScheme::Asit);
    for i in 0..185u64 {
        c.write(DataAddr::new(i * 7 % 1000), pattern(i)).unwrap();
    }
    c.crash();
    c.recover().expect("parent bump must stay tracked");
    for i in 0..185u64 {
        let addr = i * 7 % 1000;
        let last = (0..185u64).filter(|j| j * 7 % 1000 == addr).max().unwrap();
        assert_eq!(
            c.read(DataAddr::new(addr)).unwrap(),
            pattern(last),
            "addr {addr}"
        );
    }
}
