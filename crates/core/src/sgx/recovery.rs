//! Post-crash recovery for the SGX-style controller family.
//!
//! * **Strict persistence** — nothing was lost; trivial.
//! * **Write-back / Osiris** — structurally unrecoverable once dirty
//!   metadata was lost: interior nodes cannot be rebuilt from leaves
//!   (paper §3). The simulation detects the loss via the crash oracle and
//!   reports [`RecoveryError::SchemeCannotRecover`].
//! * **ASIT** (Algorithm 2) — read the Shadow Table, verify it against
//!   `SHADOW_TREE_ROOT`, splice each tracked node's counter LSBs and MAC
//!   onto its stale NVM copy, place the recovered nodes in the metadata
//!   cache (dirty, so they lazily propagate), and verify every recovered
//!   node's MAC against its parent counter.
//!
//! The ST scan, the per-entry splice reads and the MAC re-checks fan out
//! across recovery lanes (see [`crate::parallel`]). Unlike the Bonsai
//! rebuild, no level barriers are needed: each SGX node's MAC verifies
//! against its *parent counter* — already current in the cache, the
//! on-chip top node or NVM — not against sibling or child contents, so
//! every recovered node verifies independently. Entries are processed in
//! node-address order, making cache placement and the rewritten ST
//! deterministic at any lane count (including 1).

use super::{SgxController, SgxEntry, SgxScheme};
use crate::error::RecoveryError;
use crate::parallel;
use crate::recovery::RecoveryReport;
use crate::shadow::StEntry;
use crate::shadow_tree::ShadowTree;
use crate::MemoryController;
use anubis_crypto::{SgxCounterNode, SGX_COUNTERS_PER_NODE};
use anubis_nvm::{BlockAddr, NvmBackend};
use std::collections::BTreeMap;

#[derive(Default)]
struct Tally {
    reads: u64,
    writes: u64,
    hashes: u64,
    nodes_fixed: u64,
}

pub(super) fn recover<B: NvmBackend>(
    c: &mut SgxController<B>,
    lanes: usize,
) -> Result<RecoveryReport, RecoveryError> {
    let tel = c.telemetry.clone();
    let _recovery_span = tel.span("recovery", c.scheme_name());
    let redo_writes = c.domain.power_up() as u64;
    let mut t = Tally::default();
    match c.scheme {
        SgxScheme::StrictPersist => {
            // Everything persisted eagerly; the tree in NVM plus the
            // on-chip top node is complete and fresh.
        }
        SgxScheme::WriteBack | SgxScheme::EagerWriteBack | SgxScheme::Osiris => {
            if c.lost_dirty_metadata {
                return Err(RecoveryError::SchemeCannotRecover {
                    reason: "SGX-style interior nodes cannot be rebuilt from leaves; \
                             dirty metadata lost in the crash is gone for good \
                             (even with an eagerly-updated, perfectly fresh top node)",
                });
            }
        }
        SgxScheme::Asit => recover_asit(c, &mut t, lanes)?,
    }
    tel.incr("recovery_runs_total", c.scheme_name(), 1);
    Ok(RecoveryReport {
        nvm_reads: t.reads,
        nvm_writes: t.writes,
        hash_ops: t.hashes,
        counters_fixed: 0,
        nodes_fixed: t.nodes_fixed,
        redo_writes,
        reencryption_completed: false,
    })
}

/// Algorithm 2 (paper §4.3.2).
fn recover_asit<B: NvmBackend>(
    c: &mut SgxController<B>,
    t: &mut Tally,
    lanes: usize,
) -> Result<(), RecoveryError> {
    let tel = c.telemetry.clone();
    // Step 1: read the whole Shadow Table — independent slot reads, fanned
    // out across lanes, collected in slot order.
    let st_slots = c.layout.st_slots();
    let st_blocks = {
        let _span = tel.span("recovery_phase", "st_scan").items(st_slots);
        let dev = c.domain.device();
        let layout = &c.layout;
        parallel::map_range_traced(lanes, st_slots, &tel, "st_scan_lane", |slot| {
            dev.read(layout.st_slot(slot))
        })
    };
    t.reads += st_slots;

    // Step 2: regenerate SHADOW_TREE_ROOT and verify against the on-chip
    // register.
    let rebuilt = {
        let _span = tel.span("recovery_phase", "shadow_verify");
        ShadowTree::rebuild(c.config.key, st_blocks.clone())
    };
    t.hashes += rebuilt.rebuild_hash_ops();
    if rebuilt.root() != c.shadow_root {
        return Err(RecoveryError::ShadowTableTampered);
    }

    // Parse and deduplicate the entries in node-address order (shared
    // with the degraded-mode spill splice in the `repair` module).
    let lsb_bits = c.config.st_lsb_bits;
    let entries = dedup_st_entries(c, &st_blocks);

    // Step 3: recover each tracked node: stale NVM MSBs + shadow LSBs,
    // MAC replaced from the shadow entry. The stale reads and splices are
    // independent per entry — lanes compute them, results land in address
    // order; only the cache inserts stay serial.
    let splice_span = tel
        .span("recovery_phase", "splice")
        .items(entries.len() as u64);
    let recovered: Vec<(BlockAddr, SgxCounterNode)> = {
        let dev = c.domain.device();
        parallel::map_slice_traced(
            lanes,
            &entries,
            &tel,
            "splice_lane",
            |&(addr, ref entry)| {
                let stale = SgxCounterNode::from_block(&dev.read(addr));
                (addr, splice_node(&stale, entry, lsb_bits))
            },
        )
    };
    t.reads += recovered.len() as u64;
    for (addr, node) in &recovered {
        let outcome = c.cache.insert(
            *addr,
            SgxEntry {
                node: *node,
                since_persist: 0,
            },
        );
        // Recovered nodes co-resided before the crash, so they must fit
        // without evicting each other; an eviction means the verified ST
        // held more distinct nodes than the cache geometry allows —
        // corruption, reported as a typed error rather than a panic.
        if outcome.evicted.is_some() {
            tel.incr("recovery_errors_total", "shadow_capacity", 1);
            return Err(RecoveryError::ShadowCapacityExceeded { addr: *addr });
        }
        c.cache.mark_dirty(*addr);
        t.nodes_fixed += 1;
    }
    drop(splice_span);

    // Step 4: verify every recovered node's MAC against its parent
    // counter (recovered parent from the cache, the on-chip top node, or
    // the — necessarily current — NVM copy). Each check is independent —
    // parent counters are never *contents being repaired here* — so the
    // lanes verify concurrently with no ordering barrier.
    let g = c.layout.geometry().clone();
    let mac_span = tel
        .span("recovery_phase", "mac_verify")
        .items(recovered.len() as u64);
    let verdicts: Vec<(u64, bool, BlockAddr)> = {
        let dev = c.domain.device();
        let layout = &c.layout;
        let cache = &c.cache;
        let top = c.top;
        let mac_key = &c.mac_key;
        let geom = &g;
        parallel::map_slice_traced(
            lanes,
            &recovered,
            &tel,
            "mac_verify_lane",
            |&(addr, ref node)| {
                let id = layout.node_of_addr(addr).expect("validated above");
                let mut extra_reads = 0u64;
                let pc = match geom.parent(id) {
                    None => 0,
                    Some(p) if layout.is_on_chip(p) => top.counter(geom.child_slot(id)),
                    Some(p) => {
                        let p_addr = layout.node_addr(p);
                        if let Some(entry) = cache.peek(p_addr) {
                            entry.node.counter(geom.child_slot(id))
                        } else {
                            extra_reads += 1;
                            let b = dev.read(p_addr);
                            SgxCounterNode::from_block(&b).counter(geom.child_slot(id))
                        }
                    }
                };
                (extra_reads, node.verify(mac_key, pc), addr)
            },
        )
    };
    for (extra_reads, ok, addr) in verdicts {
        t.reads += extra_reads;
        t.hashes += 1;
        if !ok {
            tel.incr("recovery_errors_total", "node_mac_mismatch", 1);
            return Err(RecoveryError::NodeMacMismatch { addr });
        }
    }
    drop(mac_span);

    // Normalize the Shadow Table to the post-recovery cache state.
    //
    // Re-insertion may have placed recovered nodes in different ways than
    // they occupied before the crash; without rewriting the ST, the old
    // slots would keep orphaned entries that a *later* recovery could
    // resurrect (rolling counters back to a stale-but-MAC-valid state).
    // Recovery therefore rewrites each recovered node's entry at its
    // current slot and clears every other slot, re-anchoring
    // SHADOW_TREE_ROOT. O(cache) work, like the rest of Algorithm 2.
    let _rewrite_span = tel
        .span("recovery_phase", "st_rewrite")
        .items(recovered.len() as u64);
    let lsb_mask = (1u64 << lsb_bits) - 1;
    let mut fresh_tree = ShadowTree::new(c.config.key, st_slots);
    t.hashes += fresh_tree.rebuild_hash_ops();
    let mut occupied = vec![false; st_slots as usize];
    for (addr, node) in &recovered {
        // Residency was established by the insert loop above; a miss here
        // would mean the cache dropped a just-inserted node — treat it as
        // the same capacity corruption rather than panicking.
        let Some(slot_id) = c.cache.slot_of(*addr) else {
            tel.incr("recovery_errors_total", "shadow_capacity", 1);
            return Err(RecoveryError::ShadowCapacityExceeded { addr: *addr });
        };
        let slot = slot_id.linear(c.cache.ways()) as u64;
        let mut lsbs = [0u64; SGX_COUNTERS_PER_NODE];
        for (i, l) in lsbs.iter_mut().enumerate() {
            *l = node.counter(i) & lsb_mask;
        }
        let entry = StEntry::new(*addr, node.mac(), lsbs);
        t.writes += 1;
        c.domain
            .device_mut()
            .write(c.layout.st_slot(slot), entry.to_block());
        fresh_tree.update(slot, entry.to_block());
        occupied[slot as usize] = true;
    }
    for slot in 0..st_slots {
        if !occupied[slot as usize] && !st_blocks[slot as usize].is_zeroed() {
            t.writes += 1;
            c.domain
                .device_mut()
                .write(c.layout.st_slot(slot), anubis_nvm::Block::zeroed());
        }
    }
    c.shadow_root = fresh_tree.root();
    c.shadow_tree = Some(fresh_tree);
    c.lost_dirty_metadata = false;
    Ok(())
}

/// Parses an ST image into deduplicated `(address, entry)` pairs in
/// node-address order, keeping the freshest duplicate (componentwise-
/// largest counters — counters only ever grow, and a stale duplicate
/// always equals the NVM copy; see DESIGN.md). Entries pointing outside
/// the metadata regions are dropped — possible only through tampering
/// that also defeated the shadow root, but stay defensive.
pub(super) fn dedup_st_entries<B: NvmBackend>(
    c: &SgxController<B>,
    st_blocks: &[anubis_nvm::Block],
) -> Vec<(BlockAddr, StEntry)> {
    let mut by_addr: BTreeMap<BlockAddr, StEntry> = BTreeMap::new();
    for block in st_blocks {
        let Some(entry) = StEntry::from_block(block) else {
            continue;
        };
        if c.layout.node_of_addr(entry.addr()).is_none() {
            continue;
        }
        by_addr
            .entry(entry.addr())
            .and_modify(|existing| {
                if lsb_sum(&entry) > lsb_sum(existing) {
                    *existing = entry;
                }
            })
            .or_insert(entry);
    }
    by_addr.into_iter().collect()
}

/// Splices a shadow entry onto the stale NVM copy of its node: shadow
/// LSBs replace the counters' low bits, the MAC comes from the entry.
pub(super) fn splice_node(
    stale: &SgxCounterNode,
    entry: &StEntry,
    lsb_bits: u32,
) -> SgxCounterNode {
    let mask = (1u64 << lsb_bits) - 1;
    let mut node = SgxCounterNode::new();
    for i in 0..SGX_COUNTERS_PER_NODE {
        node.set_counter(i, (stale.counter(i) & !mask) | entry.lsbs()[i]);
    }
    node.set_mac(entry.mac());
    node
}

pub(super) fn lsb_sum(e: &StEntry) -> u128 {
    e.lsbs().iter().map(|&v| v as u128).sum()
}
