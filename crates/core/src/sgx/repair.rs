//! Degraded-mode repair hooks for the SGX-style controller family: the
//! [`Supervised`] implementation the recovery supervisor drives when
//! Algorithm 2 (and its retries) cannot restore a verified state.
//!
//! SGX-style trees cannot be rebuilt bottom-up — interior version
//! counters are not derivable from leaves — so degraded mode works
//! *top-down* from the on-chip top node instead:
//!
//! * **Spill splice** — when a verified Shadow Table tracks more nodes
//!   than the cache can hold (`ShadowCapacityExceeded`), splice entries
//!   straight into NVM, parents before children, keeping only splices
//!   that MAC-verify against their (already-spliced) parent counter.
//! * **Verify-and-reseal cascade** — walk every level below the on-chip
//!   top node; a node that fails MAC verification against its finalized
//!   parent counter keeps its *stored counters* and is re-sealed in
//!   place. Trusting NVM counters restores self-consistency without
//!   wiping subtrees: a genuinely corrupted counter word surfaces one
//!   level down (a child that no longer verifies) or at the data lines
//!   (a line that no longer opens), where the scrub pass repairs or
//!   quarantines exactly the damaged extent. The top node itself stays
//!   the hardware-anchored source of truth.
//! * **Quarantine** — retire unrecoverable data lines into the spare
//!   region, readable as zero under their current leaf counter.

use super::{recovery, SgxController, SgxScheme};
use crate::error::RecoveryError;
use crate::layout::DataAddr;
use crate::parallel;
use crate::recovery::RecoveryReport;
use crate::shadow_tree::ShadowTree;
use crate::supervisor::{RepairSummary, Supervised};
use crate::MemoryController;
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{SealedBlock, SgxCounterNode};
use anubis_itree::NodeId;
use anubis_nvm::{Block, NvmBackend};
use anubis_telemetry::Telemetry;

impl<B: NvmBackend> Supervised for SgxController<B> {
    fn fast_recover(&mut self, lanes: usize) -> Result<RecoveryReport, RecoveryError> {
        self.recover_with_lanes(lanes)
    }

    fn data_lines(&self) -> u64 {
        self.layout.data_blocks()
    }

    fn repair_line(&mut self, addr: DataAddr) -> Result<u32, RecoveryError> {
        let ctr = self.line_counter(addr);
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        let ciphertext = self.domain.device_mut().read(dev);
        let side = self.domain.device_mut().read(side_addr);
        if ctr == 0 {
            return if ciphertext.is_zeroed() && side.is_zeroed() {
                Ok(0)
            } else {
                Err(RecoveryError::CounterNotRecovered { addr: dev })
            };
        }
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let iv = IvCounter::monolithic(ctr);
        match self.codec.open_correcting(dev, iv, &sealed) {
            Ok((plaintext, fixed)) => {
                if fixed > 0 {
                    let resealed = self.codec.seal(dev, iv, &plaintext);
                    self.domain.device_mut().write(dev, resealed.ciphertext);
                    let mut side_new = Block::zeroed();
                    side_new.set_word(0, resealed.ecc);
                    side_new.set_word(1, resealed.mac);
                    self.domain.device_mut().write(side_addr, side_new);
                    self.ecc_corrections += u64::from(fixed);
                }
                Ok(fixed)
            }
            Err(_) => Err(RecoveryError::CounterNotRecovered { addr: dev }),
        }
    }

    fn quarantine_line(&mut self, addr: DataAddr) -> Result<bool, RecoveryError> {
        let ctr = self.line_counter(addr);
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        let had_content = ctr != 0;
        self.domain.device_mut().quarantine_block(dev);
        if had_content {
            // Readable as an explicit zero under the current counter; the
            // leaf counter itself stays untouched so node MACs hold.
            let resealed = self
                .codec
                .seal(dev, IvCounter::monolithic(ctr), &Block::zeroed());
            self.domain.device_mut().write(dev, resealed.ciphertext);
            let mut side_new = Block::zeroed();
            side_new.set_word(0, resealed.ecc);
            side_new.set_word(1, resealed.mac);
            self.domain.device_mut().write(side_addr, side_new);
            self.domain.device_mut().record_lost_lines(1);
        } else {
            self.domain.device_mut().write(dev, Block::zeroed());
            self.domain.device_mut().write(side_addr, Block::zeroed());
        }
        Ok(had_content)
    }

    fn targeted_repair(
        &mut self,
        err: &RecoveryError,
        lanes: usize,
    ) -> Result<RepairSummary, RecoveryError> {
        let mut sum = RepairSummary::default();
        if self.scheme == SgxScheme::Asit
            && matches!(err, RecoveryError::ShadowCapacityExceeded { .. })
        {
            sum.absorb(spill_splice(self, lanes));
        }
        sum.absorb(degrade(self, lanes));
        Ok(sum)
    }

    fn reconcile_metadata(&mut self, lanes: usize) -> Result<RepairSummary, RecoveryError> {
        Ok(degrade(self, lanes))
    }

    fn persist_quarantine(&mut self) {
        let blocks = self.domain.device().quarantine_table_blocks();
        let cap = self.layout.qtable_blocks();
        for (i, block) in blocks.into_iter().enumerate() {
            if (i as u64) < cap {
                let addr = self.layout.qtable_addr(i as u64);
                self.domain.device_mut().write(addr, block);
            }
        }
    }

    fn is_line_quarantined(&self, addr: DataAddr) -> bool {
        self.domain
            .device()
            .is_quarantined(self.layout.data_addr(addr))
    }

    fn supervisor_telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }
}

impl<B: NvmBackend> SgxController<B> {
    /// The current counter for a data line: from the resident leaf if
    /// cached (recovered nodes live there dirty), the on-chip top node
    /// for the degenerate single-leaf tree, or the NVM copy.
    fn line_counter(&mut self, addr: DataAddr) -> u64 {
        let (leaf, slot) = self.layout.leaf_of(addr);
        if self.layout.is_on_chip(leaf) {
            return self.top.counter(slot);
        }
        let leaf_addr = self.layout.node_addr(leaf);
        if let Some(entry) = self.cache.peek(leaf_addr) {
            return entry.node.counter(slot);
        }
        SgxCounterNode::from_block(&self.domain.device_mut().read(leaf_addr)).counter(slot)
    }
}

/// Splices a verified-but-over-capacity Shadow Table straight into NVM,
/// bypassing the cache: parents before children, each splice kept only if
/// it MAC-verifies against its (already-spliced) parent counter. Entries
/// that fail are left stale for the cascade.
fn spill_splice<B: NvmBackend>(c: &mut SgxController<B>, lanes: usize) -> RepairSummary {
    let mut sum = RepairSummary::default();
    let st_slots = c.layout.st_slots();
    let st_blocks: Vec<Block> = {
        let dev = c.domain.device();
        let layout = &c.layout;
        parallel::map_range(lanes, st_slots, |slot| dev.read(layout.st_slot(slot)))
    };
    // Only splice from a table the on-chip root still vouches for.
    if ShadowTree::rebuild(c.config.key, st_blocks.clone()).root() != c.shadow_root {
        return sum;
    }
    let g = c.layout.geometry().clone();
    let mut entries = recovery::dedup_st_entries(c, &st_blocks);
    entries.sort_by_key(|(addr, _)| {
        std::cmp::Reverse(c.layout.node_of_addr(*addr).map(|n| n.level).unwrap_or(0))
    });
    let lsb_bits = c.config.st_lsb_bits;
    for (addr, entry) in entries {
        let Some(id) = c.layout.node_of_addr(addr) else {
            continue;
        };
        let stale = SgxCounterNode::from_block(&c.domain.device_mut().read(addr));
        let node = recovery::splice_node(&stale, &entry, lsb_bits);
        let pc = match g.parent(id) {
            None => 0,
            Some(p) if c.layout.is_on_chip(p) => c.top.counter(g.child_slot(id)),
            Some(p) => {
                let p_addr = c.layout.node_addr(p);
                SgxCounterNode::from_block(&c.domain.device_mut().read(p_addr))
                    .counter(g.child_slot(id))
            }
        };
        if node.verify(&c.mac_key, pc) {
            c.domain.device_mut().write(addr, node.to_block());
            sum.rebuilt += 1;
        }
    }
    sum
}

/// The shared degraded-mode path: flush whatever the cache still holds,
/// run the verify-and-reseal cascade over the whole tree, and (ASIT)
/// reset the Shadow Table to match the now-empty cache.
fn degrade<B: NvmBackend>(c: &mut SgxController<B>, lanes: usize) -> RepairSummary {
    // The ASIT flush path stages ST entries through the volatile shadow
    // tree; after a crash it is gone until recovery succeeds.
    if c.scheme == SgxScheme::Asit && c.shadow_tree.is_none() {
        c.shadow_tree = Some(ShadowTree::new(c.config.key, c.layout.st_slots()));
    }
    // Best-effort flush of dirty (possibly splice-recovered) nodes so the
    // cascade sees them in NVM; verification failures mid-flush are
    // exactly what the cascade then repairs.
    let _ = c.shutdown_flush();
    c.cache.invalidate_all();
    c.pending.clear();
    c.pending_shadow_root = None;
    let sum = verify_reseal_cascade(c, lanes);
    if c.scheme == SgxScheme::Asit {
        // ST invariant: entries exist only for resident nodes — none now.
        for slot in 0..c.layout.st_slots() {
            let st_addr = c.layout.st_slot(slot);
            if !c.domain.device_mut().read(st_addr).is_zeroed() {
                c.domain.device_mut().write(st_addr, Block::zeroed());
            }
        }
        let fresh = ShadowTree::new(c.config.key, c.layout.st_slots());
        c.shadow_root = fresh.root();
        c.shadow_tree = Some(fresh);
    }
    c.lost_dirty_metadata = false;
    sum
}

/// Walks every level below the on-chip top node, top-down. Lanes verify
/// each node's MAC against its parent counter (finalized by the level
/// above); failures are re-sealed in place over their stored counters,
/// applied serially in index order — bit-identical at any lane count.
fn verify_reseal_cascade<B: NvmBackend>(c: &mut SgxController<B>, lanes: usize) -> RepairSummary {
    let g = c.layout.geometry().clone();
    let mut sum = RepairSummary::default();
    let top_level = g.num_levels() - 1;
    for level in (0..top_level).rev() {
        let fixes: Vec<Option<Block>> = {
            let dev = c.domain.device();
            let layout = &c.layout;
            let mac_key = &c.mac_key;
            let top = c.top;
            let geom = &g;
            parallel::map_range(lanes, g.nodes_at(level), |index| {
                let node = NodeId::new(level, index);
                let raw = dev.read(layout.node_addr(node));
                let pc = match geom.parent(node) {
                    None => 0,
                    Some(p) if layout.is_on_chip(p) => top.counter(geom.child_slot(node)),
                    Some(p) => SgxCounterNode::from_block(&dev.read(layout.node_addr(p)))
                        .counter(geom.child_slot(node)),
                };
                let mut val = if raw.is_zeroed() {
                    if pc == 0 {
                        // Canonical zero state verifies implicitly.
                        return None;
                    }
                    SgxCounterNode::new()
                } else {
                    SgxCounterNode::from_block(&raw)
                };
                if val.verify(mac_key, pc) {
                    None
                } else {
                    val.seal(mac_key, pc);
                    Some(val.to_block())
                }
            })
        };
        for (index, fix) in fixes.into_iter().enumerate() {
            if let Some(block) = fix {
                let addr = c.layout.node_addr(NodeId::new(level, index as u64));
                c.domain.device_mut().write(addr, block);
                sum.rebuilt += 1;
            }
        }
    }
    sum
}
