//! Deterministic, dependency-free parallel execution for recovery sweeps.
//!
//! Recovery of tree-of-counter metadata is embarrassingly parallel across
//! subtrees: Osiris counter probes touch disjoint pages, nodes within one
//! tree level hash disjoint child sets, and shadow-table slots are
//! independent. This module provides the minimal scaffolding to exploit
//! that — a scoped-thread fan-out over a fixed, contiguous shard→lane
//! assignment — without pulling in a work-stealing runtime (offline builds
//! forbid external dependencies, and work stealing would destroy the
//! determinism the recovery reports rely on).
//!
//! Determinism contract: [`map_range`]/[`map_slice`] return results in
//! item order regardless of lane count, every lane owns a contiguous
//! chunk decided purely by `(n, lanes)`, and callers reduce/apply results
//! in that order. A parallel sweep therefore produces bit-identical
//! [`crate::RecoveryReport`]s and device statistics to the serial sweep
//! (`lanes == 1` *is* the serial sweep — same code path, inline).

use anubis_telemetry::Telemetry;
use std::ops::Range;

/// Hard upper bound on recovery lanes — far above any sane host, it only
/// guards against pathological `ANUBIS_RECOVERY_THREADS` values.
pub const MAX_LANES: usize = 64;

/// Environment variable overriding the recovery lane count.
/// `ANUBIS_RECOVERY_THREADS=1` forces the serial path; unset or invalid
/// values fall back to the host's available parallelism (capped at 8).
pub const LANES_ENV: &str = "ANUBIS_RECOVERY_THREADS";

/// Resolves the lane count used by [`crate::MemoryController::recover`]:
/// the [`LANES_ENV`] override when set and valid, otherwise the host's
/// available parallelism capped at 8.
pub fn recovery_lanes() -> usize {
    lanes_from(std::env::var(LANES_ENV).ok().as_deref())
}

fn lanes_from(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_LANES),
        _ => auto_lanes(),
    }
}

fn auto_lanes() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Splits `0..n` into at most `lanes` contiguous chunks, earlier chunks
/// taking the remainder. Pure function of `(n, lanes)` — the fixed
/// shard→lane assignment underlying the determinism guarantee.
pub fn shard_chunks(n: u64, lanes: usize) -> Vec<Range<u64>> {
    let lanes = (lanes.max(1) as u64).min(n.max(1));
    let base = n / lanes;
    let extra = n % lanes;
    let mut chunks = Vec::with_capacity(lanes as usize);
    let mut start = 0;
    for lane in 0..lanes {
        let len = base + u64::from(lane < extra);
        chunks.push(start..start + len);
        start += len;
    }
    chunks
}

/// Applies `f` to every index in `0..n`, fanning chunks out across
/// `lanes` scoped threads, and returns the results in index order.
///
/// With `lanes <= 1` (or a trivially small range) this runs inline with
/// zero threading overhead — that *is* the serial path.
///
/// # Panics
///
/// Propagates a panic from `f` (the lane's panic aborts the join).
pub fn map_range<R, F>(lanes: usize, n: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let lanes = lanes.clamp(1, MAX_LANES);
    if lanes == 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_chunks(n, lanes)
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n as usize);
        for handle in handles {
            out.extend(handle.join().expect("recovery lane panicked"));
        }
        out
    })
}

/// Applies `f` to every element of `items` across `lanes` scoped threads,
/// returning results in item order (see [`map_range`]).
pub fn map_slice<T, R, F>(lanes: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_range(lanes, items.len() as u64, |i| f(&items[i as usize]))
}

/// [`map_range`] with per-lane span attribution: each lane records a
/// `telemetry` span named `span` carrying its lane index and chunk size.
/// Results are identical to `map_range` — spans observe, they never
/// reorder. When telemetry is disabled (or the handle is off) the span
/// guards are inert and this degrades to plain `map_range`.
pub fn map_range_traced<R, F>(
    lanes: usize,
    n: u64,
    telemetry: &Telemetry,
    span: &'static str,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let lanes = lanes.clamp(1, MAX_LANES);
    if lanes == 1 || n < 2 {
        let _guard = telemetry.span(span, "").lane(0).items(n);
        return (0..n).map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_chunks(n, lanes)
            .into_iter()
            .enumerate()
            .map(|(lane, chunk)| {
                let t = telemetry.clone();
                scope.spawn(move || {
                    let _guard = t.span(span, "").lane(lane).items(chunk.end - chunk.start);
                    chunk.map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n as usize);
        for handle in handles {
            out.extend(handle.join().expect("recovery lane panicked"));
        }
        out
    })
}

/// [`map_slice`] with per-lane span attribution (see [`map_range_traced`]).
pub fn map_slice_traced<T, R, F>(
    lanes: usize,
    items: &[T],
    telemetry: &Telemetry,
    span: &'static str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_range_traced(lanes, items.len() as u64, telemetry, span, |i| {
        f(&items[i as usize])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_range() {
        for n in [0u64, 1, 2, 7, 64, 1000] {
            for lanes in [1usize, 2, 3, 8, 64] {
                let chunks = shard_chunks(n, lanes);
                assert!(chunks.len() <= lanes.max(1));
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next, "contiguous at n={n} lanes={lanes}");
                    next = c.end;
                }
                assert_eq!(next, n, "covers the range at n={n} lanes={lanes}");
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let chunks = shard_chunks(10, 4);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.end - c.start).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_range_is_lane_count_invariant() {
        let f = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.rotate_left(13);
        let serial = map_range(1, 257, f);
        for lanes in [2, 3, 8] {
            assert_eq!(map_range(lanes, 257, f), serial, "lanes={lanes}");
        }
    }

    #[test]
    fn map_slice_preserves_item_order() {
        let items: Vec<u64> = (0..100).rev().collect();
        let doubled = map_slice(4, &items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn lane_resolution_clamps_and_falls_back() {
        assert_eq!(lanes_from(Some("1")), 1);
        assert_eq!(lanes_from(Some("4")), 4);
        assert_eq!(lanes_from(Some(" 2 ")), 2);
        assert_eq!(lanes_from(Some("100000")), MAX_LANES);
        let auto = auto_lanes();
        assert_eq!(lanes_from(Some("0")), auto);
        assert_eq!(lanes_from(Some("banana")), auto);
        assert_eq!(lanes_from(None), auto);
        assert!((1..=8).contains(&auto));
    }

    #[test]
    fn empty_range_yields_empty() {
        assert!(map_range(8, 0, |i| i).is_empty());
        assert!(map_slice(8, &[] as &[u64], |&x| x).is_empty());
    }
}
