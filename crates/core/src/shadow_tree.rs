//! The small non-parallelizable tree protecting the ASIT Shadow Table
//! (paper §4.3.1, "Protecting Shadow Table").
//!
//! The tree's *interior* lives in volatile storage (the paper reserves a
//! slice of the metadata cache for it); only its root — `SHADOW_TREE_ROOT`
//! — is kept in an on-chip persistent register. It is updated **eagerly**
//! on every Shadow Table write, so after a crash the register attests the
//! exact last-committed ST contents, which recovery re-hashes and checks.

use anubis_crypto::Key;
use anubis_itree::bonsai::{ReferenceTree, Root};
use anubis_nvm::Block;

/// Volatile mirror of the Shadow Table plus its protection tree.
#[derive(Clone, Debug)]
pub struct ShadowTree {
    tree: ReferenceTree,
    levels: u32,
}

impl ShadowTree {
    /// Builds the tree over `slots` all-zero ST blocks.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(master: Key, slots: u64) -> Self {
        assert!(slots > 0, "shadow table must have at least one slot");
        let tree = ReferenceTree::build(
            master.derive("shadow-table-tree"),
            vec![Block::zeroed(); slots as usize],
        );
        let levels = tree.geometry().num_levels() as u32;
        ShadowTree { tree, levels }
    }

    /// Rebuilds from an ST image read back from NVM (recovery path) and
    /// returns the recomputed root for comparison with the register.
    pub fn rebuild(master: Key, st_blocks: Vec<Block>) -> Self {
        assert!(
            !st_blocks.is_empty(),
            "shadow table must have at least one slot"
        );
        let tree = ReferenceTree::build(master.derive("shadow-table-tree"), st_blocks);
        let levels = tree.geometry().num_levels() as u32;
        ShadowTree { tree, levels }
    }

    /// Records a new ST block at `slot` and returns the new root.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn update(&mut self, slot: u64, block: Block) -> Root {
        self.tree.update_leaf(slot, block);
        self.tree.root()
    }

    /// The current root.
    pub fn root(&self) -> Root {
        self.tree.root()
    }

    /// Hash computations charged per eager update (one digest per level).
    pub fn update_hash_ops(&self) -> u32 {
        self.levels
    }

    /// Hash computations charged for a full rebuild (≈ every node once).
    pub fn rebuild_hash_ops(&self) -> u64 {
        let g = self.tree.geometry();
        (0..g.num_levels()).map(|l| g.nodes_at(l)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_changes_root_deterministically() {
        let mut a = ShadowTree::new(Key([1, 2]), 16);
        let mut b = ShadowTree::new(Key([1, 2]), 16);
        assert_eq!(a.root(), b.root());
        let ra = a.update(3, Block::filled(0xAA));
        let rb = b.update(3, Block::filled(0xAA));
        assert_eq!(ra, rb);
        assert_ne!(ra, ShadowTree::new(Key([1, 2]), 16).root());
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut inc = ShadowTree::new(Key([5, 6]), 32);
        let mut image = vec![Block::zeroed(); 32];
        for (slot, fill) in [(0u64, 1u8), (31, 2), (7, 3), (7, 4)] {
            image[slot as usize] = Block::filled(fill);
            inc.update(slot, Block::filled(fill));
        }
        let rebuilt = ShadowTree::rebuild(Key([5, 6]), image);
        assert_eq!(rebuilt.root(), inc.root());
    }

    #[test]
    fn tampered_image_mismatches() {
        let mut inc = ShadowTree::new(Key([5, 6]), 8);
        inc.update(2, Block::filled(9));
        let mut image = vec![Block::zeroed(); 8];
        image[2] = Block::filled(9);
        image[2].flip_bit(0); // attacker flips one ST bit
        assert_ne!(ShadowTree::rebuild(Key([5, 6]), image).root(), inc.root());
    }

    #[test]
    fn paper_sized_table_has_four_plus_levels() {
        // 256 KB cache -> 4096 slots -> 8-ary tree of 4 interior levels
        // (the paper: "only a tree of four levels (8-ary) needs to be
        // maintained").
        let t = ShadowTree::new(Key([1, 1]), 4096);
        assert_eq!(t.update_hash_ops(), 5); // 4096 leaves + 4 levels above
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = ShadowTree::new(Key([1, 1]), 0);
    }
}
