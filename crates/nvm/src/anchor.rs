//! The freshness anchor: a sealed, separately-fsynced epoch register.
//!
//! The Anubis paper anchors recovery trust in *on-chip* persistent
//! registers the adversary cannot touch. In this reproduction the process
//! dies but the host filesystem survives, so the stand-in is a tiny
//! anchor file beside the WAL image holding the device's **freshness
//! epoch** — a monotonic counter bumped on every flushing WAL barrier,
//! compaction, and snapshot. On reopen the WAL image's epoch is compared
//! against the anchor: an image *behind* the anchor is a rollback to
//! stale state and must be refused, never silently served.
//!
//! File format (44 bytes):
//!
//! ```text
//! "ANUBANC1" (8) | version u32 LE | slot0: epoch u64 | mac u64
//!                                 | slot1: epoch u64 | mac u64
//! ```
//!
//! Epoch `E` is sealed into slot `E % 2`, so a torn in-place write can
//! only damage the slot being written while the previous epoch's slot
//! survives intact — an honest crash mid-seal therefore degrades to
//! "anchor one epoch behind the image", which reopen accepts and heals.
//! Each slot carries a MAC keyed with the device key (a keyed-FNV
//! sandwich — the in-tree stand-in for a real MAC, consistent with the
//! simulation-grade checksums used across the durable formats), so an
//! adversary without the key cannot fabricate a valid anchor for an
//! arbitrary epoch.
//!
//! Threat-model boundary: the anchor models on-chip NVRAM, so *replaying
//! a captured anchor file together with a matching old image* is outside
//! the software-visible attack surface (in hardware the register simply
//! cannot be rolled back). Deleting or corrupting the anchor **is**
//! in-model and yields a typed violation, resolvable only by the explicit
//! operator override policy.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ANUBANC1";
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 12;
const SLOT_BYTES: usize = 16;
const FILE_BYTES: usize = HEADER_BYTES + 2 * SLOT_BYTES;

/// Why an anchor file could not be trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnchorError {
    /// The file exists but no slot carries a valid sealed epoch (torn
    /// beyond repair, bit-flipped, truncated, or forged without the key).
    Corrupt,
    /// I/O failure touching the anchor file.
    Io {
        /// Operation and path context.
        reason: String,
    },
}

impl core::fmt::Display for AnchorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AnchorError::Corrupt => write!(f, "freshness anchor is corrupt (no valid slot)"),
            AnchorError::Io { reason } => write!(f, "freshness anchor i/o failure: {reason}"),
        }
    }
}

impl std::error::Error for AnchorError {}

/// How reopen treats a missing or corrupt anchor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnchorPolicy {
    /// Conservative default: a missing/corrupt anchor over a non-empty
    /// image is a typed violation and recovery refuses to proceed.
    Strict,
    /// Explicit operator override (`ANUBIS_ANCHOR_OVERRIDE=1` at the
    /// binary level): accept the image at face value and reseal the
    /// anchor from the image's epoch. Never applies to a *valid* anchor
    /// that proves rollback — genuine rollback is not overridable.
    Override,
}

/// What the anchor check concluded about a reopened image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Freshness {
    /// No anchor is associated with this backend (plain volatile or
    /// un-anchored file open); no freshness claim is made.
    Untracked,
    /// The image is at (or exactly one barrier ahead of, after an honest
    /// crash between the WAL fsync and the seal — healed on open) the
    /// anchored epoch.
    Fresh {
        /// The verified current epoch.
        epoch: u64,
    },
    /// The image is *behind* the anchor: stale state substituted between
    /// death and restart. Must be refused.
    RolledBack {
        /// Epoch the sealed anchor proves was reached.
        anchored_epoch: u64,
        /// Older epoch the image actually carries.
        image_epoch: u64,
    },
    /// The anchor file is gone but the image has history; under
    /// [`AnchorPolicy::Strict`] this is a refusal.
    AnchorMissing {
        /// Epoch the unverifiable image carries.
        image_epoch: u64,
    },
    /// The anchor file exists but no slot seals a valid epoch.
    AnchorCorrupt {
        /// Epoch the unverifiable image carries.
        image_epoch: u64,
    },
    /// The image ran *ahead* of the anchor by more than the single
    /// in-flight barrier an honest crash can leave unanchored (the seal
    /// follows every frame fsync, so the gap is at most one). Extra tail
    /// frames were appended to the image at rest — a spliced or forged
    /// replay. Never overridable: the valid anchor is the proof.
    TailForged {
        /// Epoch the sealed anchor proves was reached.
        anchored_epoch: u64,
        /// Newer epoch the image claims (anchored + 2 or more).
        image_epoch: u64,
    },
    /// [`AnchorPolicy::Override`] accepted an image with a
    /// missing/corrupt anchor and resealed the anchor from it.
    Overridden {
        /// Epoch the anchor was resealed to.
        image_epoch: u64,
    },
}

impl Freshness {
    /// True when the status must stop recovery (rollback or an anchor
    /// violation under the strict policy).
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            Freshness::RolledBack { .. }
                | Freshness::TailForged { .. }
                | Freshness::AnchorMissing { .. }
                | Freshness::AnchorCorrupt { .. }
        )
    }
}

fn io_reason(op: &str, path: &Path, e: std::io::Error) -> AnchorError {
    AnchorError::Io {
        reason: format!("{op} {}: {e}", path.display()),
    }
}

/// Seals `epoch` under `key` — a keyed-FNV sandwich over
/// `key || epoch || key'`, the same simulation-grade MAC construction
/// strength as the WAL/snapshot checksums but unforgeable without the key.
fn seal_mac(key: [u64; 2], epoch: u64) -> u64 {
    let mut buf = [0u8; 32];
    buf[0..8].copy_from_slice(&key[0].to_le_bytes());
    buf[8..16].copy_from_slice(&epoch.to_le_bytes());
    buf[16..24].copy_from_slice(&key[1].to_le_bytes());
    buf[24..32].copy_from_slice(&key[0].rotate_left(17).to_le_bytes());
    crate::backend::fnv1a64(&buf)
}

/// The standard anchor path for a WAL image: `<image>.anchor`.
pub fn anchor_path_for(image: &Path) -> PathBuf {
    let mut os = image.as_os_str().to_os_string();
    os.push(".anchor");
    PathBuf::from(os)
}

/// An open, sealed freshness-epoch register backed by a tiny file.
#[derive(Debug)]
pub struct FreshnessAnchor {
    file: File,
    path: PathBuf,
    key: [u64; 2],
    /// Highest validly sealed epoch currently on disk.
    anchored: u64,
}

impl FreshnessAnchor {
    /// Reads the anchor at `path` without creating it. `Ok(None)` means
    /// the file does not exist; a present file with no valid slot is
    /// [`AnchorError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`AnchorError::Corrupt`] or [`AnchorError::Io`].
    pub fn probe(path: &Path, key: [u64; 2]) -> Result<Option<u64>, AnchorError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_reason("read", path, e)),
        };
        Ok(Some(Self::decode(&bytes, key)?))
    }

    fn decode(bytes: &[u8], key: [u64; 2]) -> Result<u64, AnchorError> {
        if bytes.len() < FILE_BYTES || &bytes[..8] != MAGIC {
            return Err(AnchorError::Corrupt);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version != VERSION {
            return Err(AnchorError::Corrupt);
        }
        let mut best: Option<u64> = None;
        for slot in 0..2usize {
            let off = HEADER_BYTES + slot * SLOT_BYTES;
            let epoch = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte slice"));
            let mac =
                u64::from_le_bytes(bytes[off + 8..off + 16].try_into().expect("8-byte slice"));
            // A slot only counts if its MAC verifies *and* its parity
            // matches its position — epoch E lives in slot E % 2, so a
            // valid seal copied into the wrong slot is still a forgery.
            if mac == seal_mac(key, epoch) && (epoch % 2) as usize == slot {
                best = Some(best.map_or(epoch, |b: u64| b.max(epoch)));
            }
        }
        best.ok_or(AnchorError::Corrupt)
    }

    /// Opens an existing anchor, or creates one sealed at epoch 0.
    ///
    /// # Errors
    ///
    /// [`AnchorError::Corrupt`] when the file exists but neither slot
    /// verifies; [`AnchorError::Io`] for filesystem failures.
    pub fn open(path: PathBuf, key: [u64; 2]) -> Result<Self, AnchorError> {
        match Self::probe(&path, key)? {
            Some(anchored) => {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_reason("open", &path, e))?;
                Ok(FreshnessAnchor {
                    file,
                    path,
                    key,
                    anchored,
                })
            }
            None => Self::create(path, key, 0),
        }
    }

    /// Creates (or overwrites) the anchor sealed at `epoch` — the
    /// operator-override reseal path and the fresh-image bootstrap.
    ///
    /// # Errors
    ///
    /// [`AnchorError::Io`] for filesystem failures.
    pub fn create(path: PathBuf, key: [u64; 2], epoch: u64) -> Result<Self, AnchorError> {
        let mut bytes = Vec::with_capacity(FILE_BYTES);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        // Seal `epoch` into its parity slot; the other slot gets the
        // epoch of opposite parity just below it (or a copy at epoch 0)
        // so both slots always verify.
        let other = if epoch == 0 { 0 } else { epoch - 1 };
        for slot in 0..2u64 {
            let e = if epoch % 2 == slot { epoch } else { other };
            bytes.extend_from_slice(&e.to_le_bytes());
            bytes.extend_from_slice(&seal_mac(key, e).to_le_bytes());
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_reason("create", &path, e))?;
        file.write_all(&bytes)
            .map_err(|e| io_reason("write", &path, e))?;
        file.sync_data().map_err(|e| io_reason("sync", &path, e))?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(FreshnessAnchor {
            file,
            path,
            key,
            anchored: epoch,
        })
    }

    /// The highest validly sealed epoch.
    pub fn anchored(&self) -> u64 {
        self.anchored
    }

    /// The anchor file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Advances the anchor to `epoch` with one in-place slot write plus
    /// fsync. Seals strictly forward: a request at or below the anchored
    /// epoch is a no-op, so a rolled-back caller can never overwrite the
    /// evidence against it.
    ///
    /// # Errors
    ///
    /// [`AnchorError::Io`] for filesystem failures.
    pub fn seal(&mut self, epoch: u64) -> Result<(), AnchorError> {
        if epoch <= self.anchored {
            return Ok(());
        }
        let slot = (epoch % 2) as usize;
        let off = (HEADER_BYTES + slot * SLOT_BYTES) as u64;
        let mut rec = [0u8; SLOT_BYTES];
        rec[..8].copy_from_slice(&epoch.to_le_bytes());
        rec[8..].copy_from_slice(&seal_mac(self.key, epoch).to_le_bytes());
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| io_reason("seek", &self.path, e))?;
        self.file
            .write_all(&rec)
            .map_err(|e| io_reason("write", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_reason("sync", &self.path, e))?;
        self.anchored = epoch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u64; 2] = [0x1122_3344_5566_7788, 0x99AA_BBCC_DDEE_FF00];

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anubis-anchor-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_seal_probe_roundtrip() {
        let p = tmp("roundtrip");
        let mut a = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        assert_eq!(a.anchored(), 0);
        for e in 1..=9 {
            a.seal(e).unwrap();
        }
        assert_eq!(a.anchored(), 9);
        drop(a);
        assert_eq!(FreshnessAnchor::probe(&p, KEY).unwrap(), Some(9));
        let b = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        assert_eq!(b.anchored(), 9);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn seal_never_goes_backward() {
        let p = tmp("backward");
        let mut a = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        a.seal(5).unwrap();
        a.seal(3).unwrap(); // no-op
        assert_eq!(a.anchored(), 5);
        drop(a);
        assert_eq!(FreshnessAnchor::probe(&p, KEY).unwrap(), Some(5));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_probes_none() {
        let p = tmp("missing");
        assert_eq!(FreshnessAnchor::probe(&p, KEY).unwrap(), None);
    }

    #[test]
    fn torn_slot_write_leaves_previous_epoch_valid() {
        let p = tmp("torn");
        let mut a = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        a.seal(6).unwrap();
        a.seal(7).unwrap();
        drop(a);
        // Tear the *next* seal: epoch 8 targets slot 0; garble slot 0
        // mid-write the way a crash during `seal(8)` would.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_BYTES..HEADER_BYTES + 8].copy_from_slice(&8u64.to_le_bytes());
        bytes[HEADER_BYTES + 8] ^= 0xFF; // MAC half-written
        std::fs::write(&p, &bytes).unwrap();
        // Slot 1 still seals epoch 7.
        assert_eq!(FreshnessAnchor::probe(&p, KEY).unwrap(), Some(7));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn wrong_key_and_bit_flips_are_corrupt() {
        let p = tmp("forge");
        let mut a = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        a.seal(1).unwrap();
        a.seal(2).unwrap();
        drop(a);
        assert_eq!(
            FreshnessAnchor::probe(&p, [1, 2]).unwrap_err(),
            AnchorError::Corrupt
        );
        let mut bytes = std::fs::read(&p).unwrap();
        for b in bytes.iter_mut().skip(HEADER_BYTES) {
            *b ^= 0x10;
        }
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(
            FreshnessAnchor::probe(&p, KEY).unwrap_err(),
            AnchorError::Corrupt
        );
        std::fs::write(&p, b"short").unwrap();
        assert_eq!(
            FreshnessAnchor::probe(&p, KEY).unwrap_err(),
            AnchorError::Corrupt
        );
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn valid_seal_in_wrong_slot_is_rejected() {
        let p = tmp("parity");
        let mut a = FreshnessAnchor::open(p.clone(), KEY).unwrap();
        a.seal(3).unwrap();
        a.seal(4).unwrap();
        drop(a);
        let mut bytes = std::fs::read(&p).unwrap();
        // Copy slot 0's (even-epoch) seal over slot 1.
        let (head, tail) = bytes.split_at_mut(HEADER_BYTES + SLOT_BYTES);
        tail[..SLOT_BYTES].copy_from_slice(&head[HEADER_BYTES..]);
        std::fs::write(&p, &bytes).unwrap();
        // Slot 0 still valid at 4; the misplaced copy contributes nothing.
        assert_eq!(FreshnessAnchor::probe(&p, KEY).unwrap(), Some(4));
        let _ = std::fs::remove_file(&p);
    }
}
