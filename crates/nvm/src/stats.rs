//! Device access statistics.

use crate::addr::BlockAddr;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters for device-level reads and writes, broken down by region label.
///
/// Used for the paper's endurance discussion (§6.2: strict persistence
/// costs "at least an additional ten writes per memory write operation",
/// ASIT only one) and for write-amplification experiments.
///
/// Counters live behind interior mutability so that *reads* of the device
/// can take `&self` — a read does not logically mutate memory, and forcing
/// `&mut` on every read path infected controllers, recovery code and the
/// simulator with spurious exclusive borrows. The interior mutability is
/// thread-safe (atomics plus a mutex for the region maps) so a shared
/// `&NvmDevice` can be read concurrently from parallel recovery lanes;
/// totals are order-independent sums, so a parallel sweep reports exactly
/// the same statistics as its serial equivalent.
#[derive(Debug, Default)]
pub struct NvmStats {
    reads: AtomicU64,
    writes: AtomicU64,
    reads_by_region: Mutex<BTreeMap<&'static str, u64>>,
    writes_by_region: Mutex<BTreeMap<&'static str, u64>>,
    max_writes_to_one_block: AtomicU64,
}

impl NvmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total block reads served by the device.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total block writes applied to the device.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reads attributed to the region labeled `name` (0 if never seen).
    pub fn reads_in(&self, name: &str) -> u64 {
        self.reads_by_region
            .lock()
            .expect("stats mutex")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Writes attributed to the region labeled `name` (0 if never seen).
    pub fn writes_in(&self, name: &str) -> u64 {
        self.writes_by_region
            .lock()
            .expect("stats mutex")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// The largest number of writes any single block has received —
    /// a simple wear-leveling/endurance indicator.
    pub fn max_writes_to_one_block(&self) -> u64 {
        self.max_writes_to_one_block.load(Ordering::Relaxed)
    }

    /// Iterates `(region, writes)` pairs in region-name order.
    pub fn writes_by_region(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.writes_by_region
            .lock()
            .expect("stats mutex")
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect::<Vec<_>>()
            .into_iter()
    }

    pub(crate) fn record_read(&self, region: Option<&'static str>) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = region {
            *self
                .reads_by_region
                .lock()
                .expect("stats mutex")
                .entry(r)
                .or_insert(0) += 1;
        }
    }

    pub(crate) fn record_write(
        &self,
        region: Option<&'static str>,
        writes_to_block: u64,
        _addr: BlockAddr,
    ) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = region {
            *self
                .writes_by_region
                .lock()
                .expect("stats mutex")
                .entry(r)
                .or_insert(0) += 1;
        }
        self.max_writes_to_one_block
            .fetch_max(writes_to_block, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// A plain-value snapshot of every counter — the bridge the
    /// observability layer publishes into its metric registry without
    /// `anubis-nvm` needing a telemetry dependency.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            max_writes_to_one_block: self.max_writes_to_one_block(),
            reads_by_region: self
                .reads_by_region
                .lock()
                .expect("stats mutex")
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            writes_by_region: self
                .writes_by_region
                .lock()
                .expect("stats mutex")
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
        }
    }
}

/// A point-in-time copy of [`NvmStats`] as plain values, in region-name
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total block reads served by the device.
    pub reads: u64,
    /// Total block writes applied to the device.
    pub writes: u64,
    /// The largest number of writes any single block has received.
    pub max_writes_to_one_block: u64,
    /// `(region, reads)` pairs in region-name order.
    pub reads_by_region: Vec<(&'static str, u64)>,
    /// `(region, writes)` pairs in region-name order.
    pub writes_by_region: Vec<(&'static str, u64)>,
}

impl Clone for NvmStats {
    fn clone(&self) -> Self {
        NvmStats {
            reads: AtomicU64::new(self.reads()),
            writes: AtomicU64::new(self.writes()),
            reads_by_region: Mutex::new(self.reads_by_region.lock().expect("stats mutex").clone()),
            writes_by_region: Mutex::new(
                self.writes_by_region.lock().expect("stats mutex").clone(),
            ),
            max_writes_to_one_block: AtomicU64::new(self.max_writes_to_one_block()),
        }
    }
}

impl PartialEq for NvmStats {
    fn eq(&self, other: &Self) -> bool {
        self.reads() == other.reads()
            && self.writes() == other.writes()
            && self.max_writes_to_one_block() == other.max_writes_to_one_block()
            && *self.reads_by_region.lock().expect("stats mutex")
                == *other.reads_by_region.lock().expect("stats mutex")
            && *self.writes_by_region.lock().expect("stats mutex")
                == *other.writes_by_region.lock().expect("stats mutex")
    }
}

impl Eq for NvmStats {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        let mut s = NvmStats::new();
        s.record_read(Some("data"));
        s.record_read(None);
        s.record_write(Some("data"), 1, BlockAddr::new(0));
        s.record_write(Some("ctr"), 5, BlockAddr::new(1));
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads_in("data"), 1);
        assert_eq!(s.writes_in("ctr"), 1);
        assert_eq!(s.writes_in("nope"), 0);
        assert_eq!(s.max_writes_to_one_block(), 5);
        assert_eq!(s.writes_by_region().count(), 2);
        s.reset();
        assert_eq!(s, NvmStats::new());
    }

    #[test]
    fn recording_works_through_shared_references() {
        let s = NvmStats::new();
        let shared: &NvmStats = &s;
        shared.record_read(Some("data"));
        shared.record_read(Some("data"));
        assert_eq!(shared.reads(), 2);
        assert_eq!(shared.reads_in("data"), 2);
    }

    #[test]
    fn clone_snapshots_counts() {
        let s = NvmStats::new();
        s.record_read(Some("data"));
        s.record_write(Some("data"), 3, BlockAddr::new(0));
        let snap = s.clone();
        s.record_read(None);
        assert_eq!(snap.reads(), 1);
        assert_eq!(snap.writes(), 1);
        assert_eq!(snap.max_writes_to_one_block(), 3);
        assert_ne!(snap, s);
    }

    #[test]
    fn recording_is_sound_across_threads() {
        let s = NvmStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = &s;
                scope.spawn(move || {
                    for _ in 0..250 {
                        stats.record_read(Some("data"));
                    }
                });
            }
        });
        assert_eq!(s.reads(), 1000);
        assert_eq!(s.reads_in("data"), 1000);
    }
}
