//! Device access statistics.

use crate::addr::BlockAddr;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Counters for device-level reads and writes, broken down by region label.
///
/// Used for the paper's endurance discussion (§6.2: strict persistence
/// costs "at least an additional ten writes per memory write operation",
/// ASIT only one) and for write-amplification experiments.
///
/// Counters live behind interior mutability so that *reads* of the device
/// can take `&self` — a read does not logically mutate memory, and forcing
/// `&mut` on every read path infected controllers, recovery code and the
/// simulator with spurious exclusive borrows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NvmStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
    reads_by_region: RefCell<BTreeMap<&'static str, u64>>,
    writes_by_region: RefCell<BTreeMap<&'static str, u64>>,
    max_writes_to_one_block: Cell<u64>,
}

impl NvmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total block reads served by the device.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total block writes applied to the device.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Reads attributed to the region labeled `name` (0 if never seen).
    pub fn reads_in(&self, name: &str) -> u64 {
        self.reads_by_region
            .borrow()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Writes attributed to the region labeled `name` (0 if never seen).
    pub fn writes_in(&self, name: &str) -> u64 {
        self.writes_by_region
            .borrow()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// The largest number of writes any single block has received —
    /// a simple wear-leveling/endurance indicator.
    pub fn max_writes_to_one_block(&self) -> u64 {
        self.max_writes_to_one_block.get()
    }

    /// Iterates `(region, writes)` pairs in region-name order.
    pub fn writes_by_region(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.writes_by_region
            .borrow()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect::<Vec<_>>()
            .into_iter()
    }

    pub(crate) fn record_read(&self, region: Option<&'static str>) {
        self.reads.set(self.reads.get() + 1);
        if let Some(r) = region {
            *self.reads_by_region.borrow_mut().entry(r).or_insert(0) += 1;
        }
    }

    pub(crate) fn record_write(
        &self,
        region: Option<&'static str>,
        writes_to_block: u64,
        _addr: BlockAddr,
    ) {
        self.writes.set(self.writes.get() + 1);
        if let Some(r) = region {
            *self.writes_by_region.borrow_mut().entry(r).or_insert(0) += 1;
        }
        self.max_writes_to_one_block
            .set(self.max_writes_to_one_block.get().max(writes_to_block));
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        let mut s = NvmStats::new();
        s.record_read(Some("data"));
        s.record_read(None);
        s.record_write(Some("data"), 1, BlockAddr::new(0));
        s.record_write(Some("ctr"), 5, BlockAddr::new(1));
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads_in("data"), 1);
        assert_eq!(s.writes_in("ctr"), 1);
        assert_eq!(s.writes_in("nope"), 0);
        assert_eq!(s.max_writes_to_one_block(), 5);
        assert_eq!(s.writes_by_region().count(), 2);
        s.reset();
        assert_eq!(s, NvmStats::new());
    }

    #[test]
    fn recording_works_through_shared_references() {
        let s = NvmStats::new();
        let shared: &NvmStats = &s;
        shared.record_read(Some("data"));
        shared.record_read(Some("data"));
        assert_eq!(shared.reads(), 2);
        assert_eq!(shared.reads_in("data"), 2);
    }
}
