//! Device access statistics.

use crate::addr::BlockAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for device-level reads and writes, broken down by region label.
///
/// Used for the paper's endurance discussion (§6.2: strict persistence
/// costs "at least an additional ten writes per memory write operation",
/// ASIT only one) and for write-amplification experiments.
///
/// Counters live behind interior mutability so that *reads* of the device
/// can take `&self` — a read does not logically mutate memory, and forcing
/// `&mut` on every read path infected controllers, recovery code and the
/// simulator with spurious exclusive borrows.
///
/// The per-region breakdown is a flat array of `AtomicU64` slots indexed
/// by region number (regions are fixed at [`configure_regions`]
/// (Self::configure_regions) time), so recording an access is a single
/// `Relaxed` fetch-add into one slot — the mutex-guarded `BTreeMap` this
/// replaced serialized every counted access in the hot path. Totals are
/// not kept as separate counters at all: they are the sum of the region
/// slots plus one unattributed slot, aggregated once per query instead of
/// incremented once per access. Totals are order-independent sums, so a
/// parallel sweep reports exactly the same statistics as its serial
/// equivalent.
#[derive(Debug, Default)]
pub struct NvmStats {
    /// Region labels, indexed by region number. Fixed between
    /// reconfigurations; kept alongside the counters so name-based
    /// queries still work.
    region_names: Vec<&'static str>,
    /// Reads per region, same indexing as `region_names`; the final extra
    /// slot counts unattributed reads.
    reads_by_region: Vec<AtomicU64>,
    /// Writes per region, same layout as `reads_by_region`.
    writes_by_region: Vec<AtomicU64>,
    max_writes_to_one_block: AtomicU64,
}

impl NvmStats {
    /// Creates zeroed statistics with no regions configured (every access
    /// counts as unattributed until [`configure_regions`]
    /// (Self::configure_regions)).
    pub fn new() -> Self {
        let mut s = Self::default();
        s.configure_regions(Vec::new());
        s
    }

    /// Installs the region label table and zeroes all per-region
    /// counters. Called when a region map is registered on the device.
    pub(crate) fn configure_regions(&mut self, names: Vec<&'static str>) {
        let slots = names.len() + 1; // + the unattributed slot
        self.region_names = names;
        self.reads_by_region = (0..slots).map(|_| AtomicU64::new(0)).collect();
        self.writes_by_region = (0..slots).map(|_| AtomicU64::new(0)).collect();
        self.max_writes_to_one_block = AtomicU64::new(0);
    }

    /// Slot index for a resolved region (the last slot is the
    /// unattributed bucket).
    fn slot(&self, region: Option<usize>) -> usize {
        region.unwrap_or(self.region_names.len())
    }

    /// Total block reads served by the device.
    pub fn reads(&self) -> u64 {
        self.reads_by_region
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total block writes applied to the device.
    pub fn writes(&self) -> u64 {
        self.writes_by_region
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Reads attributed to the region labeled `name` (0 if never seen).
    pub fn reads_in(&self, name: &str) -> u64 {
        self.region_names
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| self.reads_by_region[i].load(Ordering::Relaxed))
    }

    /// Writes attributed to the region labeled `name` (0 if never seen).
    pub fn writes_in(&self, name: &str) -> u64 {
        self.region_names
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| self.writes_by_region[i].load(Ordering::Relaxed))
    }

    /// The largest number of writes any single block has received —
    /// a simple wear-leveling/endurance indicator.
    pub fn max_writes_to_one_block(&self) -> u64 {
        self.max_writes_to_one_block.load(Ordering::Relaxed)
    }

    /// Iterates `(region, writes)` pairs in region-name order, skipping
    /// regions that were never written (matching the lazily populated map
    /// this structure replaced).
    pub fn writes_by_region(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut pairs: Vec<(&'static str, u64)> = self
            .region_names
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, self.writes_by_region[i].load(Ordering::Relaxed)))
            .filter(|(_, v)| *v > 0)
            .collect();
        pairs.sort_unstable_by_key(|(n, _)| *n);
        pairs.into_iter()
    }

    pub(crate) fn record_read(&self, region: Option<usize>) {
        self.reads_by_region[self.slot(region)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(
        &self,
        region: Option<usize>,
        writes_to_block: u64,
        _addr: BlockAddr,
    ) {
        self.writes_by_region[self.slot(region)].fetch_add(1, Ordering::Relaxed);
        self.max_writes_to_one_block
            .fetch_max(writes_to_block, Ordering::Relaxed);
    }

    /// Resets every counter to zero (the region table is kept).
    pub fn reset(&mut self) {
        for c in self.reads_by_region.iter().chain(&self.writes_by_region) {
            c.store(0, Ordering::Relaxed);
        }
        self.max_writes_to_one_block.store(0, Ordering::Relaxed);
    }

    /// A plain-value snapshot of every counter — the bridge the
    /// observability layer publishes into its metric registry without
    /// `anubis-nvm` needing a telemetry dependency.
    pub fn snapshot(&self) -> StatsSnapshot {
        let collect = |counters: &[AtomicU64]| {
            let mut pairs: Vec<(&'static str, u64)> = self
                .region_names
                .iter()
                .enumerate()
                .map(|(i, n)| (*n, counters[i].load(Ordering::Relaxed)))
                .filter(|(_, v)| *v > 0)
                .collect();
            pairs.sort_unstable_by_key(|(n, _)| *n);
            pairs
        };
        StatsSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            max_writes_to_one_block: self.max_writes_to_one_block(),
            reads_by_region: collect(&self.reads_by_region),
            writes_by_region: collect(&self.writes_by_region),
        }
    }
}

/// A point-in-time copy of [`NvmStats`] as plain values, in region-name
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total block reads served by the device.
    pub reads: u64,
    /// Total block writes applied to the device.
    pub writes: u64,
    /// The largest number of writes any single block has received.
    pub max_writes_to_one_block: u64,
    /// `(region, reads)` pairs in region-name order.
    pub reads_by_region: Vec<(&'static str, u64)>,
    /// `(region, writes)` pairs in region-name order.
    pub writes_by_region: Vec<(&'static str, u64)>,
}

impl Clone for NvmStats {
    fn clone(&self) -> Self {
        NvmStats {
            region_names: self.region_names.clone(),
            reads_by_region: self
                .reads_by_region
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            writes_by_region: self
                .writes_by_region
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            max_writes_to_one_block: AtomicU64::new(self.max_writes_to_one_block()),
        }
    }
}

impl PartialEq for NvmStats {
    fn eq(&self, other: &Self) -> bool {
        // Value equality over the observable counters, so two stats with
        // different (but equally unused) region tables still compare
        // equal — matching the lazily populated maps this replaced.
        self.snapshot() == other.snapshot()
    }
}

impl Eq for NvmStats {}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_regions(names: &[&'static str]) -> NvmStats {
        let mut s = NvmStats::new();
        s.configure_regions(names.to_vec());
        s
    }

    #[test]
    fn records_and_resets() {
        let mut s = with_regions(&["data", "ctr"]);
        s.record_read(Some(0));
        s.record_read(None);
        s.record_write(Some(0), 1, BlockAddr::new(0));
        s.record_write(Some(1), 5, BlockAddr::new(1));
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads_in("data"), 1);
        assert_eq!(s.writes_in("ctr"), 1);
        assert_eq!(s.writes_in("nope"), 0);
        assert_eq!(s.max_writes_to_one_block(), 5);
        assert_eq!(s.writes_by_region().count(), 2);
        s.reset();
        assert_eq!(s, NvmStats::new());
        // The region table survives a reset.
        s.record_write(Some(1), 1, BlockAddr::new(1));
        assert_eq!(s.writes_in("ctr"), 1);
    }

    #[test]
    fn recording_works_through_shared_references() {
        let s = with_regions(&["data"]);
        let shared: &NvmStats = &s;
        shared.record_read(Some(0));
        shared.record_read(Some(0));
        assert_eq!(shared.reads(), 2);
        assert_eq!(shared.reads_in("data"), 2);
    }

    #[test]
    fn clone_snapshots_counts() {
        let s = with_regions(&["data"]);
        s.record_read(Some(0));
        s.record_write(Some(0), 3, BlockAddr::new(0));
        let snap = s.clone();
        s.record_read(None);
        assert_eq!(snap.reads(), 1);
        assert_eq!(snap.writes(), 1);
        assert_eq!(snap.max_writes_to_one_block(), 3);
        assert_ne!(snap, s);
    }

    #[test]
    fn snapshot_skips_untouched_regions_and_sorts_by_name() {
        let s = with_regions(&["zeta", "alpha", "mid"]);
        s.record_write(Some(0), 1, BlockAddr::new(0));
        s.record_write(Some(1), 1, BlockAddr::new(1));
        let snap = s.snapshot();
        assert_eq!(snap.writes_by_region, vec![("alpha", 1), ("zeta", 1)]);
        assert!(snap.reads_by_region.is_empty());
    }

    #[test]
    fn recording_is_sound_across_threads() {
        let s = with_regions(&["data"]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = &s;
                scope.spawn(move || {
                    for _ in 0..250 {
                        stats.record_read(Some(0));
                    }
                });
            }
        });
        assert_eq!(s.reads(), 1000);
        assert_eq!(s.reads_in("data"), 1000);
    }
}
