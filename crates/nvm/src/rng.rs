//! A small deterministic PRNG for workloads, tests and fault plans.
//!
//! The repository must build and test without network access, so instead of
//! pulling in `rand`, every randomized component uses this in-tree
//! SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14). SplitMix64 passes
//! BigCrush, is seedable from a single `u64`, and — most importantly for
//! crash-matrix reproducibility — has a trivially stable stream across
//! platforms and compiler versions.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use anubis_nvm::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(10..20) >= 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (half-open).
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias over a 64-bit
    /// source is far below anything the statistical tests can observe.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range over empty range");
        let span = range.end - range.start;
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent stream; the fork is decorrelated from the
    /// parent by re-seeding through the output function.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x5851_F42D_4C95_7F2D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567, from the
        // published reference implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(10);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn ranges_and_floats_are_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(rng.gen_index(7) < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SplitMix64::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut rng = SplitMix64::new(21);
        let mut fork = rng.fork();
        assert_ne!(rng.next_u64(), fork.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).gen_range(3..3);
    }
}
