//! The persistence domain: device + WPQ + persistent registers.

use crate::addr::BlockAddr;
use crate::backend::{MemBackend, NvmBackend};
use crate::block::Block;
use crate::device::NvmDevice;
use crate::error::NvmError;
use crate::fault::{tear_block, FaultKind, FaultPlan};
use crate::pregs::{PersistentRegisters, PREG_CAPACITY};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::wpq::Wpq;

/// One block write destined for NVM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOp {
    /// Destination block address.
    pub addr: BlockAddr,
    /// Block contents to persist.
    pub block: Block,
}

impl WriteOp {
    /// Creates a write operation.
    pub fn new(addr: BlockAddr, block: Block) -> Self {
        WriteOp { addr, block }
    }
}

/// The persistent side of the memory controller.
///
/// Every memory-controller scheme in the `anubis` crate performs its NVM
/// updates through [`PersistenceDomain::commit_group`], which implements
/// the paper's two-stage persistent-register commit (§2.7): the whole group
/// becomes persistent atomically or not at all, regardless of where a crash
/// lands.
///
/// Crash injection: call [`PersistenceDomain::power_fail`] at any point;
/// the WPQ is flushed by ADR, in-flight staged groups are lost, and any
/// group caught mid-drain is REDOne by [`PersistenceDomain::power_up`].
#[derive(Clone, Debug)]
pub struct PersistenceDomain<B: NvmBackend = MemBackend> {
    device: NvmDevice<B>,
    wpq: Wpq,
    pregs: PersistentRegisters,
    powered: bool,
    commits: u64,
    /// Lifetime count of device-level writes drained through the commit
    /// path — the index space over which [`FaultPlan`]s trigger.
    persist_writes: u64,
    fault: Option<FaultPlan>,
    fault_fired: Option<FaultKind>,
}

impl PersistenceDomain<MemBackend> {
    /// Creates a powered-up domain over a fresh in-memory device of
    /// `capacity_bytes` bytes with a default-sized WPQ.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_device(NvmDevice::new(capacity_bytes))
    }
}

impl<B: NvmBackend> PersistenceDomain<B> {
    /// Creates a powered-up domain of `capacity_bytes` bytes over an
    /// existing storage backend (e.g. a reopened file image).
    pub fn with_backend(capacity_bytes: u64, backend: B) -> Self {
        Self::with_device(NvmDevice::with_backend(capacity_bytes, backend))
    }

    /// Creates a powered-up domain over an existing device (e.g. one with a
    /// prepared memory image).
    pub fn with_device(device: NvmDevice<B>) -> Self {
        PersistenceDomain {
            device,
            wpq: Wpq::default(),
            pregs: PersistentRegisters::new(),
            powered: true,
            commits: 0,
            persist_writes: 0,
            fault: None,
            fault_fired: None,
        }
    }

    /// The underlying device (contents, statistics, tamper API).
    pub fn device(&self) -> &NvmDevice<B> {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut NvmDevice<B> {
        &mut self.device
    }

    /// Stores one persistent-register image (see [`NvmDevice::set_reg`]).
    /// Controllers mirror on-chip persistent registers here *before*
    /// committing so the image lands in the same durable flush as the
    /// commit group.
    pub fn set_reg(&mut self, idx: u8, block: Block) {
        self.device.set_reg(idx, block);
    }

    /// Loads a persistent-register image.
    pub fn reg(&self, idx: u8) -> Option<Block> {
        self.device.reg(idx)
    }

    /// Forces the backend's ordered durability point (no-op in memory).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] when the storage medium fails.
    pub fn barrier(&mut self) -> Result<(), NvmError> {
        self.device.flush_backend()
    }

    /// Whether the domain is currently powered.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Number of commit groups completed since power-up.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Current write-pending-queue occupancy (entries held under ADR),
    /// exposed for the observability layer's `wpq_occupancy` gauge.
    pub fn wpq_occupancy(&self) -> usize {
        self.wpq.len()
    }

    /// The WPQ's capacity in entries.
    pub fn wpq_capacity(&self) -> usize {
        self.wpq.capacity()
    }

    /// Lifetime count of device-level writes drained through
    /// [`PersistenceDomain::commit_group`]. Fault plans trigger on indices
    /// in this space, so a harness can dry-run a workload, read this
    /// counter, and then sweep a fault over every index.
    pub fn persist_writes(&self) -> u64 {
        self.persist_writes
    }

    /// Arms a one-shot fault plan, replacing any armed plan. The plan fires
    /// when the counted write index reaches
    /// [`FaultPlan::trigger_index`]; see [`crate::FaultKind`] for the
    /// effect of each fault class.
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes and returns the armed (not yet fired) fault plan, if any.
    pub fn disarm_fault(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The fault that fired, if one has. Cleared by
    /// [`PersistenceDomain::clear_fault_record`].
    pub fn fault_fired(&self) -> Option<&FaultKind> {
        self.fault_fired.as_ref()
    }

    /// Clears the fired-fault record (armed plans are unaffected).
    pub fn clear_fault_record(&mut self) {
        self.fault_fired = None;
    }

    /// Reads a block, observing pending WPQ writes (the controller must see
    /// its own queued stores).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::PoweredOff`] if the domain is powered off, or
    /// [`NvmError::OutOfRange`] for addresses beyond capacity.
    pub fn read(&self, addr: BlockAddr) -> Result<Block, NvmError> {
        if !self.powered {
            return Err(NvmError::PoweredOff);
        }
        if let Some(b) = self.wpq.pending(addr) {
            // Still count it as a device access for the stats: a real
            // forwarding hit is cheaper, but the timing model charges for
            // that separately.
            self.device.stats_read_only(addr);
            return Ok(b);
        }
        self.device.try_read(addr)
    }

    /// Atomically persists a group of writes via the two-stage commit.
    ///
    /// On return the entire group is in the persistent domain (registers
    /// drained into the WPQ). A crash injected *before* this call loses the
    /// group; a crash injected *after* keeps it — there is no partial state.
    ///
    /// # Errors
    ///
    /// * [`NvmError::PoweredOff`] if the domain is powered off.
    /// * [`NvmError::CommitGroupTooLarge`] if the group exceeds
    ///   [`PREG_CAPACITY`]; nothing is persisted in that case.
    pub fn commit_group<I>(&mut self, ops: I) -> Result<(), NvmError>
    where
        I: IntoIterator<Item = WriteOp>,
    {
        self.commit_group_with_regs(ops, &[])
    }

    /// [`PersistenceDomain::commit_group`] plus persistent-register
    /// mirrors made durable **atomically with the group**: the register
    /// images are staged after group validation and flushed in the same
    /// backend barrier, so a reopened image never pairs a committed group
    /// with stale registers (or vice versa).
    ///
    /// # Errors
    ///
    /// As [`PersistenceDomain::commit_group`]; on
    /// [`NvmError::CommitGroupTooLarge`] neither the group nor the
    /// register mirrors are persisted.
    pub fn commit_group_with_regs<I>(
        &mut self,
        ops: I,
        regs: &[(u8, Block)],
    ) -> Result<(), NvmError>
    where
        I: IntoIterator<Item = WriteOp>,
    {
        if !self.powered {
            return Err(NvmError::PoweredOff);
        }
        // Stage.
        let mut staged = 0usize;
        for op in ops {
            if !self.pregs.stage(op) {
                // Roll the oversized group back out of the registers.
                let _ = self.pregs.survive_crash_discard_staging();
                return Err(NvmError::CommitGroupTooLarge {
                    group_len: staged + 1,
                    capacity: PREG_CAPACITY,
                });
            }
            staged += 1;
        }
        // The group is valid: the register mirrors now belong to the same
        // durability unit (same barrier frame) as the group itself.
        for &(idx, block) in regs {
            self.device.set_reg(idx, block);
        }
        if staged == 0 {
            return if regs.is_empty() {
                Ok(())
            } else {
                self.device.flush_backend()
            };
        }
        // Commit: set DONE_BIT then drain into the WPQ. Each drained entry
        // is one counted device-level write — the granularity at which
        // armed faults fire.
        self.pregs.set_done();
        while let Some(mut op) = self.pregs.next_to_drain() {
            if let Some(plan) = &self.fault {
                if plan.trigger_index() == self.persist_writes {
                    let kind = self.fault.take().expect("plan present").into_kind();
                    self.fault_fired = Some(kind.clone());
                    match kind {
                        FaultKind::PowerCut => {
                            // The triggering write never reaches the WPQ.
                            // ADR flushes what the WPQ holds; the group
                            // stays in the persistent registers with
                            // DONE_BIT set and is REDOne at power_up.
                            self.wpq.flush(&mut self.device);
                            self.powered = false;
                            let _ = self.device.flush_backend();
                            return Err(NvmError::PowerLost);
                        }
                        FaultKind::TornWrite { words } => {
                            // The write tears inside the device and the
                            // registers lose the rest of the group: this is
                            // the fault class two-stage commit cannot mask,
                            // so recovery must *detect* it.
                            let old = self.device.peek(op.addr);
                            let torn = tear_block(&old, &op.block, words);
                            self.persist_writes += 1;
                            self.device.try_write(op.addr, torn)?;
                            self.pregs.torn_discard();
                            self.wpq.flush(&mut self.device);
                            self.powered = false;
                            let _ = self.device.flush_backend();
                            return Err(NvmError::PowerLost);
                        }
                        FaultKind::BitFlip { bits } => {
                            // The write lands corrupted; execution
                            // continues and detection is deferred to the
                            // ECC / MAC / tree layers.
                            for bit in bits {
                                op.block.flip_bit(bit);
                            }
                        }
                    }
                }
            }
            self.persist_writes += 1;
            // The write is now in the persistent domain even though it may
            // sit in the WPQ for a while: journal it so durable backends
            // replay it after a restart.
            self.device.journal_write(op.addr, op.block);
            self.wpq.insert(op, &mut self.device);
        }
        self.commits += 1;
        // The ack point: once this barrier returns, the whole group (and
        // its register mirrors) is durable across process death.
        self.device.flush_backend()?;
        Ok(())
    }

    /// Simulates a power failure: ADR flushes the WPQ to the device, a
    /// staging group is lost, a draining group survives in the NVM-backed
    /// registers. All volatile state above this domain (caches!) must be
    /// discarded by the caller.
    pub fn power_fail(&mut self) {
        self.wpq.flush(&mut self.device);
        self.powered = false;
        // ADR residual energy also covers the backend flush; best-effort
        // by design — a failing medium during power-down has no error
        // path on real hardware either.
        let _ = self.device.flush_backend();
        // Note: pregs keep their state; semantics resolve at power_up.
    }

    /// Restores power and REDOes any commit group that was caught
    /// mid-drain, completing the paper's recovery precondition. Returns the
    /// number of redone writes.
    pub fn power_up(&mut self) -> usize {
        self.powered = true;
        let redo = self.pregs.survive_crash();
        let n = redo.len();
        for op in redo {
            self.wpq.insert(op, &mut self.device);
        }
        self.wpq.flush(&mut self.device);
        let _ = self.device.flush_backend();
        n
    }

    /// Drains the WPQ to the device (idle-time draining); useful before
    /// inspecting device contents mid-run.
    pub fn drain_wpq(&mut self) {
        self.wpq.flush(&mut self.device);
        let _ = self.device.flush_backend();
    }

    /// The backend's current freshness epoch (0 for volatile backends).
    pub fn epoch(&self) -> u64 {
        self.device.backend().epoch()
    }

    /// The freshness-anchor verdict recorded when the backend was opened
    /// ([`crate::Freshness::Untracked`] for volatile backends).
    pub fn freshness(&self) -> crate::Freshness {
        self.device.backend().freshness()
    }

    /// Captures the full persistent state — device contents, register
    /// file, persistent-register commit machinery, and the serialized
    /// quarantine table. Drains the WPQ first so the image is
    /// self-contained, and bumps the freshness epoch so live state is
    /// provably newer than the snapshot it feeds (best-effort, like the
    /// drain's flush).
    pub fn snapshot(&mut self) -> Snapshot {
        self.drain_wpq();
        let _ = self.device.backend_mut().bump_epoch();
        Snapshot {
            epoch: self.device.backend().epoch(),
            entries: self.device.backend().entries(),
            regs: self.device.backend().regs(),
            pregs_entries: self.pregs.entries().to_vec(),
            pregs_done: self.pregs.done_bit(),
            pregs_drained: self.pregs.drained() as u64,
            qtable: self.device.quarantine_table_blocks(),
        }
    }

    /// Restores a snapshot into this domain: block contents and registers
    /// are written into the backend, the quarantine table and the
    /// persistent-register state are reinstated, and the result is made
    /// durable with one barrier.
    ///
    /// A snapshot whose captured epoch is *behind* the epoch this
    /// domain's backend already reached is refused before any byte is
    /// applied: substituting it would roll committed state back to a
    /// stale version, which is exactly the freshness violation the
    /// sealed anchor exists to prevent.
    ///
    /// # Errors
    ///
    /// [`NvmError::Snapshot`] with [`SnapshotError::StaleEpoch`] for a
    /// rolled-back snapshot (nothing applied), or with
    /// [`SnapshotError::BadQuarantineTable`] if the embedded quarantine
    /// table fails to parse; [`NvmError::Backend`] if the final barrier
    /// fails. The device contents may be partially restored on the
    /// latter two errors.
    pub fn apply_snapshot(&mut self, snap: &Snapshot) -> Result<(), NvmError> {
        let current_epoch = self.device.backend().epoch();
        if snap.epoch < current_epoch {
            return Err(NvmError::Snapshot(SnapshotError::StaleEpoch {
                snapshot_epoch: snap.epoch,
                current_epoch,
            }));
        }
        for &(phys, block) in &snap.entries {
            self.device.backend_mut().store(phys, block);
        }
        for &(idx, block) in &snap.regs {
            self.device.set_reg(idx, block);
        }
        if !snap.qtable.is_empty() {
            self.device
                .load_quarantine_table(&snap.qtable)
                .map_err(|_| NvmError::Snapshot(SnapshotError::BadQuarantineTable))?;
        }
        self.pregs = PersistentRegisters::from_parts(
            snap.pregs_entries.clone(),
            snap.pregs_done,
            snap.pregs_drained as usize,
        );
        self.device.flush_backend()
    }

    /// Test hook: leaves a group staged (resp. draining) so crash tests can
    /// exercise the `DONE_BIT` semantics directly.
    #[doc(hidden)]
    pub fn pregs_mut(&mut self) -> &mut PersistentRegisters {
        &mut self.pregs
    }
}

impl<B: NvmBackend> NvmDevice<B> {
    /// Records a read that was served by WPQ forwarding (still one logical
    /// metadata access for statistics purposes).
    pub(crate) fn stats_read_only(&self, addr: BlockAddr) {
        // Delegate through try_read's bookkeeping without changing content:
        // forwarding hits are rare enough that double storage is not worth
        // a second code path.
        let _ = self.try_read(addr);
    }
}

impl PersistentRegisters {
    /// Discards a partially staged group (oversized-commit rollback).
    pub(crate) fn survive_crash_discard_staging(&mut self) -> usize {
        let n = self.len();
        let _ = self.survive_crash();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64, fill: u8) -> WriteOp {
        WriteOp::new(BlockAddr::new(i), Block::filled(fill))
    }

    #[test]
    fn committed_group_survives_crash() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(1, 0xAA), op(2, 0xBB)]).unwrap();
        d.power_fail();
        d.power_up();
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
        assert_eq!(d.commits(), 1);
    }

    #[test]
    fn staging_group_is_lost_on_crash() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.pregs_mut().stage(op(1, 0xAA));
        d.power_fail();
        let redone = d.power_up();
        assert_eq!(redone, 0);
        assert!(d.device().peek(BlockAddr::new(1)).is_zeroed());
    }

    #[test]
    fn draining_group_is_redone_on_power_up() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.pregs_mut().stage(op(1, 0xAA));
        d.pregs_mut().stage(op(2, 0xBB));
        d.pregs_mut().set_done();
        let _ = d.pregs_mut().next_to_drain(); // crash mid-drain
        d.power_fail();
        let redone = d.power_up();
        assert_eq!(redone, 2);
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
    }

    #[test]
    fn read_sees_pending_wpq_write() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(5, 0x11)]).unwrap();
        assert_eq!(d.read(BlockAddr::new(5)).unwrap(), Block::filled(0x11));
    }

    #[test]
    fn oversized_group_rejected_atomically() {
        let mut d = PersistenceDomain::new(1 << 20);
        let big: Vec<_> = (0..=PREG_CAPACITY as u64).map(|i| op(i, 1)).collect();
        let err = d.commit_group(big).unwrap_err();
        assert!(matches!(err, NvmError::CommitGroupTooLarge { .. }));
        d.power_fail();
        d.power_up();
        assert!(d.device().peek(BlockAddr::new(0)).is_zeroed());
    }

    #[test]
    fn powered_off_domain_rejects_io() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.power_fail();
        assert_eq!(d.read(BlockAddr::new(0)), Err(NvmError::PoweredOff));
        assert_eq!(d.commit_group([op(0, 1)]), Err(NvmError::PoweredOff));
        d.power_up();
        assert!(d.read(BlockAddr::new(0)).is_ok());
    }

    #[test]
    fn empty_commit_group_is_noop() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group(std::iter::empty()).unwrap();
        assert_eq!(d.commits(), 0);
    }

    #[test]
    fn power_cut_mid_group_is_redone_at_power_up() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.arm_fault(FaultPlan::power_cut_after(1));
        let err = d
            .commit_group([op(1, 0xAA), op(2, 0xBB), op(3, 0xCC)])
            .unwrap_err();
        assert_eq!(err, NvmError::PowerLost);
        assert!(!d.is_powered());
        assert_eq!(d.fault_fired(), Some(&FaultKind::PowerCut));
        assert_eq!(d.persist_writes(), 1);
        // Two-stage commit masks the cut: power_up REDOes the whole group.
        d.power_up();
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
        assert_eq!(d.device().peek(BlockAddr::new(3)), Block::filled(0xCC));
    }

    #[test]
    fn power_cut_after_all_writes_of_a_group_never_fires() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.arm_fault(FaultPlan::power_cut_after(2));
        d.commit_group([op(1, 0xAA), op(2, 0xBB)]).unwrap();
        assert!(d.fault_fired().is_none());
        // It fires on the next group's first write instead.
        assert_eq!(d.commit_group([op(3, 0xCC)]), Err(NvmError::PowerLost));
    }

    #[test]
    fn torn_write_persists_partial_group_and_partial_block() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.device_mut().poke(BlockAddr::new(2), Block::filled(0x11));
        d.arm_fault(FaultPlan::torn_write_after(1, 3));
        let err = d
            .commit_group([op(1, 0xAA), op(2, 0xBB), op(3, 0xCC)])
            .unwrap_err();
        assert_eq!(err, NvmError::PowerLost);
        d.power_up();
        // Write 0 landed whole; write 1 tore mid-block; write 2 was lost
        // with the discarded register group.
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        let torn = d.device().peek(BlockAddr::new(2));
        for w in 0..Block::WORDS {
            let expect = if w < 3 {
                Block::filled(0xBB).word(w)
            } else {
                Block::filled(0x11).word(w)
            };
            assert_eq!(torn.word(w), expect, "word {w}");
        }
        assert!(d.device().peek(BlockAddr::new(3)).is_zeroed());
    }

    #[test]
    fn bit_flip_corrupts_silently_and_execution_continues() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.arm_fault(FaultPlan::bit_flip_after(0, vec![0, 9]));
        d.commit_group([op(1, 0x00), op(2, 0xBB)]).unwrap();
        assert!(d.is_powered());
        assert!(matches!(d.fault_fired(), Some(FaultKind::BitFlip { .. })));
        d.drain_wpq();
        let mut expect = Block::zeroed();
        expect.flip_bit(0);
        expect.flip_bit(9);
        assert_eq!(d.device().peek(BlockAddr::new(1)), expect);
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
    }

    #[test]
    fn disarm_and_clear_record() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.arm_fault(FaultPlan::power_cut_after(0));
        assert_eq!(d.disarm_fault(), Some(FaultPlan::power_cut_after(0)));
        d.commit_group([op(1, 0xAA)]).unwrap();
        assert!(d.fault_fired().is_none());
        d.arm_fault(FaultPlan::bit_flip_after(1, vec![5]));
        d.commit_group([op(2, 0xBB)]).unwrap();
        assert!(d.fault_fired().is_some());
        d.clear_fault_record();
        assert!(d.fault_fired().is_none());
    }

    #[test]
    fn drain_wpq_makes_contents_visible_via_peek() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(7, 0x77)]).unwrap();
        assert!(d.device().peek(BlockAddr::new(7)).is_zeroed());
        d.drain_wpq();
        assert_eq!(d.device().peek(BlockAddr::new(7)), Block::filled(0x77));
    }
}
