//! The persistence domain: device + WPQ + persistent registers.

use crate::addr::BlockAddr;
use crate::block::Block;
use crate::device::NvmDevice;
use crate::error::NvmError;
use crate::pregs::{PersistentRegisters, PREG_CAPACITY};
use crate::wpq::Wpq;

/// One block write destined for NVM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOp {
    /// Destination block address.
    pub addr: BlockAddr,
    /// Block contents to persist.
    pub block: Block,
}

impl WriteOp {
    /// Creates a write operation.
    pub fn new(addr: BlockAddr, block: Block) -> Self {
        WriteOp { addr, block }
    }
}

/// The persistent side of the memory controller.
///
/// Every memory-controller scheme in the `anubis` crate performs its NVM
/// updates through [`PersistenceDomain::commit_group`], which implements
/// the paper's two-stage persistent-register commit (§2.7): the whole group
/// becomes persistent atomically or not at all, regardless of where a crash
/// lands.
///
/// Crash injection: call [`PersistenceDomain::power_fail`] at any point;
/// the WPQ is flushed by ADR, in-flight staged groups are lost, and any
/// group caught mid-drain is REDOne by [`PersistenceDomain::power_up`].
#[derive(Clone, Debug)]
pub struct PersistenceDomain {
    device: NvmDevice,
    wpq: Wpq,
    pregs: PersistentRegisters,
    powered: bool,
    commits: u64,
}

impl PersistenceDomain {
    /// Creates a powered-up domain over a fresh device of
    /// `capacity_bytes` bytes with a default-sized WPQ.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_device(NvmDevice::new(capacity_bytes))
    }

    /// Creates a powered-up domain over an existing device (e.g. one with a
    /// prepared memory image).
    pub fn with_device(device: NvmDevice) -> Self {
        PersistenceDomain {
            device,
            wpq: Wpq::default(),
            pregs: PersistentRegisters::new(),
            powered: true,
            commits: 0,
        }
    }

    /// The underlying device (contents, statistics, tamper API).
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut NvmDevice {
        &mut self.device
    }

    /// Whether the domain is currently powered.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Number of commit groups completed since power-up.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Reads a block, observing pending WPQ writes (the controller must see
    /// its own queued stores).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::PoweredOff`] if the domain is powered off, or
    /// [`NvmError::OutOfRange`] for addresses beyond capacity.
    pub fn read(&mut self, addr: BlockAddr) -> Result<Block, NvmError> {
        if !self.powered {
            return Err(NvmError::PoweredOff);
        }
        if let Some(b) = self.wpq.pending(addr) {
            // Still count it as a device access for the stats: a real
            // forwarding hit is cheaper, but the timing model charges for
            // that separately.
            self.device.stats_read_only(addr);
            return Ok(b);
        }
        self.device.try_read(addr)
    }

    /// Atomically persists a group of writes via the two-stage commit.
    ///
    /// On return the entire group is in the persistent domain (registers
    /// drained into the WPQ). A crash injected *before* this call loses the
    /// group; a crash injected *after* keeps it — there is no partial state.
    ///
    /// # Errors
    ///
    /// * [`NvmError::PoweredOff`] if the domain is powered off.
    /// * [`NvmError::CommitGroupTooLarge`] if the group exceeds
    ///   [`PREG_CAPACITY`]; nothing is persisted in that case.
    pub fn commit_group<I>(&mut self, ops: I) -> Result<(), NvmError>
    where
        I: IntoIterator<Item = WriteOp>,
    {
        if !self.powered {
            return Err(NvmError::PoweredOff);
        }
        // Stage.
        let mut staged = 0usize;
        for op in ops {
            if !self.pregs.stage(op) {
                // Roll the oversized group back out of the registers.
                let _ = self.pregs.survive_crash_discard_staging();
                return Err(NvmError::CommitGroupTooLarge {
                    group_len: staged + 1,
                    capacity: PREG_CAPACITY,
                });
            }
            staged += 1;
        }
        if staged == 0 {
            return Ok(());
        }
        // Commit: set DONE_BIT then drain into the WPQ.
        self.pregs.set_done();
        while let Some(op) = self.pregs.next_to_drain() {
            self.wpq.insert(op, &mut self.device);
        }
        self.commits += 1;
        Ok(())
    }

    /// Simulates a power failure: ADR flushes the WPQ to the device, a
    /// staging group is lost, a draining group survives in the NVM-backed
    /// registers. All volatile state above this domain (caches!) must be
    /// discarded by the caller.
    pub fn power_fail(&mut self) {
        self.wpq.flush(&mut self.device);
        self.powered = false;
        // Note: pregs keep their state; semantics resolve at power_up.
    }

    /// Restores power and REDOes any commit group that was caught
    /// mid-drain, completing the paper's recovery precondition. Returns the
    /// number of redone writes.
    pub fn power_up(&mut self) -> usize {
        self.powered = true;
        let redo = self.pregs.survive_crash();
        let n = redo.len();
        for op in redo {
            self.wpq.insert(op, &mut self.device);
        }
        self.wpq.flush(&mut self.device);
        n
    }

    /// Drains the WPQ to the device (idle-time draining); useful before
    /// inspecting device contents mid-run.
    pub fn drain_wpq(&mut self) {
        self.wpq.flush(&mut self.device);
    }

    /// Test hook: leaves a group staged (resp. draining) so crash tests can
    /// exercise the `DONE_BIT` semantics directly.
    #[doc(hidden)]
    pub fn pregs_mut(&mut self) -> &mut PersistentRegisters {
        &mut self.pregs
    }
}

impl NvmDevice {
    /// Records a read that was served by WPQ forwarding (still one logical
    /// metadata access for statistics purposes).
    pub(crate) fn stats_read_only(&mut self, addr: BlockAddr) {
        // Delegate through try_read's bookkeeping without changing content:
        // forwarding hits are rare enough that double storage is not worth
        // a second code path.
        let _ = self.try_read(addr);
    }
}

impl PersistentRegisters {
    /// Discards a partially staged group (oversized-commit rollback).
    pub(crate) fn survive_crash_discard_staging(&mut self) -> usize {
        let n = self.len();
        let _ = self.survive_crash();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64, fill: u8) -> WriteOp {
        WriteOp::new(BlockAddr::new(i), Block::filled(fill))
    }

    #[test]
    fn committed_group_survives_crash() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(1, 0xAA), op(2, 0xBB)]).unwrap();
        d.power_fail();
        d.power_up();
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
        assert_eq!(d.commits(), 1);
    }

    #[test]
    fn staging_group_is_lost_on_crash() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.pregs_mut().stage(op(1, 0xAA));
        d.power_fail();
        let redone = d.power_up();
        assert_eq!(redone, 0);
        assert!(d.device().peek(BlockAddr::new(1)).is_zeroed());
    }

    #[test]
    fn draining_group_is_redone_on_power_up() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.pregs_mut().stage(op(1, 0xAA));
        d.pregs_mut().stage(op(2, 0xBB));
        d.pregs_mut().set_done();
        let _ = d.pregs_mut().next_to_drain(); // crash mid-drain
        d.power_fail();
        let redone = d.power_up();
        assert_eq!(redone, 2);
        assert_eq!(d.device().peek(BlockAddr::new(1)), Block::filled(0xAA));
        assert_eq!(d.device().peek(BlockAddr::new(2)), Block::filled(0xBB));
    }

    #[test]
    fn read_sees_pending_wpq_write() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(5, 0x11)]).unwrap();
        assert_eq!(d.read(BlockAddr::new(5)).unwrap(), Block::filled(0x11));
    }

    #[test]
    fn oversized_group_rejected_atomically() {
        let mut d = PersistenceDomain::new(1 << 20);
        let big: Vec<_> = (0..=PREG_CAPACITY as u64).map(|i| op(i, 1)).collect();
        let err = d.commit_group(big).unwrap_err();
        assert!(matches!(err, NvmError::CommitGroupTooLarge { .. }));
        d.power_fail();
        d.power_up();
        assert!(d.device().peek(BlockAddr::new(0)).is_zeroed());
    }

    #[test]
    fn powered_off_domain_rejects_io() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.power_fail();
        assert_eq!(d.read(BlockAddr::new(0)), Err(NvmError::PoweredOff));
        assert_eq!(d.commit_group([op(0, 1)]), Err(NvmError::PoweredOff));
        d.power_up();
        assert!(d.read(BlockAddr::new(0)).is_ok());
    }

    #[test]
    fn empty_commit_group_is_noop() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group(std::iter::empty()).unwrap();
        assert_eq!(d.commits(), 0);
    }

    #[test]
    fn drain_wpq_makes_contents_visible_via_peek() {
        let mut d = PersistenceDomain::new(1 << 20);
        d.commit_group([op(7, 0x77)]).unwrap();
        assert!(d.device().peek(BlockAddr::new(7)).is_zeroed());
        d.drain_wpq();
        assert_eq!(d.device().peek(BlockAddr::new(7)), Block::filled(0x77));
    }
}
