//! File-backed NVM images: a write-ahead log with ordered flushes and a
//! sealed freshness anchor.
//!
//! The on-disk format is an append-only log:
//!
//! ```text
//! header:  "ANUBWAL1" (8 bytes) | version u32 LE (= 2)
//! frame*:  payload_len u32 LE | fnv1a64(epoch ‖ payload) u64 LE | epoch u64 LE | payload
//! record*: tag 0 (block write): phys u64 LE | 64 contents bytes
//!          tag 1 (register):    idx u8     | 64 contents bytes
//! ```
//!
//! Every [`NvmBackend::store`] / [`NvmBackend::journal`] /
//! [`NvmBackend::store_reg`] appends a record to an in-memory pending
//! buffer; [`NvmBackend::barrier`] serializes the buffer as **one**
//! checksummed frame and fsyncs. A frame is therefore the atomicity unit:
//! on reopen, records are replayed in append order (last write to an
//! address wins) and a structurally torn tail frame — the signature of a
//! process killed mid-append — is discarded and truncated away. A frame
//! whose checksum fails any other way is *corruption*, surfaced as a
//! typed [`NvmError::Backend`], never a panic.
//!
//! Each flushed frame carries the device's **freshness epoch**, bumped on
//! every flushing barrier, compaction, and snapshot. Replay demands
//! strictly increasing epochs, so a spliced, reordered, or duplicated
//! frame — internally checksum-valid — is still typed corruption. When
//! the image is opened with [`FileBackend::open_with_anchor`], the last
//! epoch is compared against the sealed [`FreshnessAnchor`] beside the
//! image: an image *behind* the anchor is a rollback to stale state and
//! is reported as [`Freshness::RolledBack`] for the recovery layer to
//! refuse. The frame checksum itself stays unkeyed by design — it is a
//! structural integrity check; content authenticity belongs to the
//! crypto layer above, and freshness to the anchor.
//!
//! The log is compacted (rewritten as one frame holding just the live
//! blocks and registers, then atomically renamed into place) once the
//! replayed record count sufficiently exceeds the live footprint.

use crate::anchor::{anchor_path_for, AnchorError, AnchorPolicy, Freshness, FreshnessAnchor};
use crate::backend::{fnv1a64, fnv1a64_seeded, NvmBackend};
use crate::block::Block;
use crate::error::NvmError;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ANUBWAL1";
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 12;
const FRAME_HEADER_BYTES: usize = 20;

const TAG_WRITE: u8 = 0;
const TAG_REG: u8 = 1;

/// Compaction triggers when the flushed record count exceeds
/// `COMPACT_FACTOR × live footprint + COMPACT_FLOOR`.
const COMPACT_FACTOR: u64 = 4;
const COMPACT_FLOOR: u64 = 1024;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> NvmError {
    NvmError::Backend {
        reason: format!("{op} {}: {e}", path.display()),
    }
}

/// The checksum of one WAL frame: an FNV-1a stream over the frame epoch
/// followed by the payload, so neither can be altered independently.
fn frame_crc(epoch: u64, payload: &[u8]) -> u64 {
    fnv1a64_seeded(fnv1a64(&epoch.to_le_bytes()), payload)
}

/// A durable, write-ahead-logged file backend for [`crate::NvmDevice`].
///
/// Persisted bytes never reflect an unflushed commit group: stores only
/// reach the file at [`NvmBackend::barrier`], which the persistence
/// domain invokes exactly where the simulated hardware persists (commit
/// group completion, ADR flush, power-up REDO). Reopening the image after
/// a SIGKILL therefore reconstructs precisely the state an in-process
/// `power_fail` would have left: every acknowledged commit group, nothing
/// of any group still in flight.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    path: PathBuf,
    cache: HashMap<u64, Block>,
    regs: BTreeMap<u8, Block>,
    /// Exact replay state of the flushed log: the last *flushed* record
    /// (store or journal) per address. `cache` deliberately excludes
    /// journaled-but-undrained writes — they are WPQ-resident and must
    /// stay invisible to `load` — but those records are already durable,
    /// so compaction must rewrite from this map, never from `cache`.
    replay: HashMap<u64, Block>,
    /// Serialized records awaiting the next barrier.
    pending: Vec<u8>,
    /// Structured mirror of the block records in `pending`, applied to
    /// `replay` once the frame durably lands.
    pending_ops: Vec<(u64, Block)>,
    pending_records: u64,
    /// Records sitting in flushed frames (reset by compaction).
    wal_records: u64,
    /// Current freshness epoch: that of the image's last intact frame,
    /// bumped before each flushed frame / compaction / snapshot.
    epoch: u64,
    /// Sealed epoch register, present for anchored opens.
    anchor: Option<FreshnessAnchor>,
    /// The anchor check's verdict at open time.
    freshness: Freshness,
    /// Torn tail frames discarded (and truncated away) at open.
    rejected_frames: u64,
    suppressed: bool,
}

impl FileBackend {
    /// Opens (or creates) a WAL image at `path`, replaying every intact
    /// frame. A structurally torn tail frame is truncated away. No
    /// freshness anchor is consulted: the image's epoch is trusted at
    /// face value ([`Freshness::Untracked`]).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] for I/O failures, a bad magic or
    /// version, a checksum-corrupt frame that is not a torn tail, or a
    /// non-monotonic frame epoch.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, NvmError> {
        Self::open_inner(path.as_ref(), None)
    }

    /// Opens a WAL image and verifies its epoch against the sealed
    /// freshness anchor beside it (`<path>.anchor`), creating the anchor
    /// for a fresh image. The verdict is reported through
    /// [`NvmBackend::freshness`]; an image behind the anchor still opens
    /// (so the damage can be inspected) but reports
    /// [`Freshness::RolledBack`], which the recovery layer must refuse.
    /// Under [`AnchorPolicy::Override`] a missing or corrupt anchor is
    /// resealed from the image's epoch instead of reported as a
    /// violation; genuine rollback is never overridden.
    ///
    /// # Errors
    ///
    /// As [`FileBackend::open`], plus anchor I/O failures.
    pub fn open_with_anchor(
        path: impl AsRef<Path>,
        key: [u64; 2],
        policy: AnchorPolicy,
    ) -> Result<Self, NvmError> {
        Self::open_inner(path.as_ref(), Some((key, policy)))
    }

    fn open_inner(
        path: &Path,
        anchoring: Option<([u64; 2], AnchorPolicy)>,
    ) -> Result<Self, NvmError> {
        let path = path.to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read", &path, e))?;

        let mut cache = HashMap::new();
        let mut regs = BTreeMap::new();
        let mut wal_records = 0u64;
        let mut epoch = 0u64;
        let mut rejected_frames = 0u64;

        let valid_len = if bytes.is_empty() {
            file.write_all(MAGIC)
                .map_err(|e| io_err("init", &path, e))?;
            file.write_all(&VERSION.to_le_bytes())
                .map_err(|e| io_err("init", &path, e))?;
            file.sync_data().map_err(|e| io_err("sync", &path, e))?;
            HEADER_BYTES
        } else {
            if bytes.len() < HEADER_BYTES || &bytes[..8] != MAGIC {
                return Err(NvmError::Backend {
                    reason: format!("{}: not an Anubis WAL image (bad magic)", path.display()),
                });
            }
            let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
            if version != VERSION {
                return Err(NvmError::Backend {
                    reason: format!(
                        "{}: unsupported WAL version {version} (expected {VERSION})",
                        path.display()
                    ),
                });
            }
            let mut pos = HEADER_BYTES;
            while pos < bytes.len() {
                if pos + FRAME_HEADER_BYTES > bytes.len() {
                    rejected_frames += 1;
                    break; // torn tail: incomplete frame header
                }
                let len = u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ]) as usize;
                let crc = u64::from_le_bytes(
                    bytes[pos + 4..pos + 12]
                        .try_into()
                        .expect("slice is 8 bytes"),
                );
                let frame_epoch = u64::from_le_bytes(
                    bytes[pos + 12..pos + 20]
                        .try_into()
                        .expect("slice is 8 bytes"),
                );
                let start = pos + FRAME_HEADER_BYTES;
                let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                    rejected_frames += 1;
                    break; // torn tail: payload cut short by the kill
                };
                let payload = &bytes[start..end];
                if frame_crc(frame_epoch, payload) != crc {
                    // A complete frame with a bad checksum is bit
                    // corruption, not a torn append.
                    return Err(NvmError::Backend {
                        reason: format!(
                            "{}: corrupt WAL frame at byte {pos} (checksum mismatch)",
                            path.display()
                        ),
                    });
                }
                if frame_epoch <= epoch {
                    // Epochs strictly increase through the log; a repeat
                    // or regression is a reordered, duplicated, or
                    // spliced frame — checksum-intact, still corruption.
                    return Err(NvmError::Backend {
                        reason: format!(
                            "{}: non-monotonic WAL frame epoch {frame_epoch} after {epoch} \
                             at byte {pos} (spliced or reordered frame)",
                            path.display()
                        ),
                    });
                }
                epoch = frame_epoch;
                wal_records += replay_frame(&path, payload, &mut cache, &mut regs)?;
                pos = end;
            }
            pos
        };

        if (valid_len as u64) < bytes.len() as u64 {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate", &path, e))?;
            file.sync_data().map_err(|e| io_err("sync", &path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &path, e))?;

        let (anchor, freshness) = match anchoring {
            None => (None, Freshness::Untracked),
            Some((key, policy)) => Self::check_anchor(&path, key, policy, epoch)?,
        };

        Ok(FileBackend {
            file,
            path,
            replay: cache.clone(),
            cache,
            regs,
            pending: Vec::new(),
            pending_ops: Vec::new(),
            pending_records: 0,
            wal_records,
            epoch,
            anchor,
            freshness,
            rejected_frames,
            suppressed: false,
        })
    }

    /// Resolves the anchor beside the image against the image's replayed
    /// epoch. Returns the anchor handle (absent only when the verdict is
    /// a strict-policy violation, so evidence is preserved untouched)
    /// plus the freshness verdict.
    fn check_anchor(
        path: &Path,
        key: [u64; 2],
        policy: AnchorPolicy,
        image_epoch: u64,
    ) -> Result<(Option<FreshnessAnchor>, Freshness), NvmError> {
        let apath = anchor_path_for(path);
        let anchor_io = |e: AnchorError| NvmError::Backend {
            reason: e.to_string(),
        };
        match FreshnessAnchor::probe(&apath, key) {
            Ok(Some(anchored)) if anchored > image_epoch => {
                // A valid anchor ahead of the image proves rollback; no
                // policy overrides it, and the anchor is left untouched.
                Ok((
                    None,
                    Freshness::RolledBack {
                        anchored_epoch: anchored,
                        image_epoch,
                    },
                ))
            }
            Ok(Some(anchored)) if image_epoch > anchored + 1 => {
                // The seal follows every frame fsync, so an honest crash
                // leaves the image at most ONE epoch past the anchor.
                // Further ahead means frames were appended at rest — a
                // spliced or forged tail. Like rollback this is proven by
                // a valid anchor, so no policy overrides it.
                Ok((
                    None,
                    Freshness::TailForged {
                        anchored_epoch: anchored,
                        image_epoch,
                    },
                ))
            }
            Ok(Some(anchored)) => {
                let mut a = FreshnessAnchor::open(apath, key).map_err(anchor_io)?;
                if anchored < image_epoch {
                    // Honest crash after the WAL fsync but before the
                    // anchor seal (or mid-seal, torn): heal forward.
                    a.seal(image_epoch).map_err(anchor_io)?;
                }
                Ok((Some(a), Freshness::Fresh { epoch: image_epoch }))
            }
            Ok(None) if image_epoch == 0 => {
                // Fresh image with no history: bootstrap the anchor.
                let a = FreshnessAnchor::create(apath, key, 0).map_err(anchor_io)?;
                Ok((Some(a), Freshness::Fresh { epoch: 0 }))
            }
            Ok(None) => match policy {
                AnchorPolicy::Strict => Ok((None, Freshness::AnchorMissing { image_epoch })),
                AnchorPolicy::Override => {
                    let a = FreshnessAnchor::create(apath, key, image_epoch).map_err(anchor_io)?;
                    Ok((Some(a), Freshness::Overridden { image_epoch }))
                }
            },
            Err(AnchorError::Corrupt) => match policy {
                AnchorPolicy::Strict => Ok((None, Freshness::AnchorCorrupt { image_epoch })),
                AnchorPolicy::Override => {
                    let a = FreshnessAnchor::create(apath, key, image_epoch).map_err(anchor_io)?;
                    Ok((Some(a), Freshness::Overridden { image_epoch }))
                }
            },
            Err(e @ AnchorError::Io { .. }) => Err(anchor_io(e)),
        }
    }

    /// The image path this backend persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether [`NvmBackend::suppress_flushes`] has been invoked.
    pub fn flushes_suppressed(&self) -> bool {
        self.suppressed
    }

    fn push_write(&mut self, phys: u64, block: Block) {
        self.pending.push(TAG_WRITE);
        self.pending.extend_from_slice(&phys.to_le_bytes());
        self.pending.extend_from_slice(block.as_bytes());
        self.pending_ops.push((phys, block));
        self.pending_records += 1;
    }

    fn push_reg(&mut self, idx: u8, block: Block) {
        self.pending.push(TAG_REG);
        self.pending.push(idx);
        self.pending.extend_from_slice(block.as_bytes());
        self.pending_records += 1;
    }

    fn live_records(&self) -> u64 {
        (self.replay.len() + self.regs.len()) as u64
    }

    /// Appends one frame carrying `payload` at a freshly bumped epoch and
    /// fsyncs, then seals the anchor forward to match. The WAL lands
    /// strictly before the anchor advances, so an honest crash between
    /// the two leaves the image *ahead* of the anchor (accepted and
    /// healed on reopen) — never behind it.
    fn append_frame(&mut self, payload: &[u8]) -> Result<(), NvmError> {
        self.epoch += 1;
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&frame_crc(self.epoch, payload).to_le_bytes());
        frame.extend_from_slice(&self.epoch.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path.clone(), e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path.clone(), e))?;
        self.seal_anchor()
    }

    fn seal_anchor(&mut self) -> Result<(), NvmError> {
        if let Some(anchor) = &mut self.anchor {
            anchor.seal(self.epoch).map_err(|e| NvmError::Backend {
                reason: e.to_string(),
            })?;
        }
        Ok(())
    }

    /// Rewrites the log as header + one frame of the replay state and
    /// atomically renames it into place. The baseline is `replay`, not
    /// `cache`: journaled-but-undrained writes are durable in the log
    /// being discarded and must survive into its replacement. The
    /// rewritten frame carries a freshly bumped epoch, sealed into the
    /// anchor after the rename.
    fn compact(&mut self) -> Result<(), NvmError> {
        let mut payload = Vec::with_capacity(self.replay.len() * 73 + self.regs.len() * 66);
        let mut entries: Vec<_> = self.replay.iter().map(|(&k, &b)| (k, b)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        for (phys, block) in &entries {
            payload.push(TAG_WRITE);
            payload.extend_from_slice(&phys.to_le_bytes());
            payload.extend_from_slice(block.as_bytes());
        }
        for (&idx, block) in &self.regs {
            payload.push(TAG_REG);
            payload.push(idx);
            payload.extend_from_slice(block.as_bytes());
        }

        self.epoch += 1;
        let tmp = self.path.with_extension("compact-tmp");
        let mut out = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        out.write_all(MAGIC).map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&VERSION.to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&frame_crc(self.epoch, &payload).to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&self.epoch.to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&payload)
            .map_err(|e| io_err("write", &tmp, e))?;
        out.sync_data().map_err(|e| io_err("sync", &tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("rename", &tmp, e))?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        out.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &tmp, e))?;
        self.file = out;
        self.wal_records = self.live_records();
        self.seal_anchor()
    }
}

fn replay_frame(
    path: &Path,
    payload: &[u8],
    cache: &mut HashMap<u64, Block>,
    regs: &mut BTreeMap<u8, Block>,
) -> Result<u64, NvmError> {
    let malformed = |pos: usize| NvmError::Backend {
        reason: format!(
            "{}: malformed WAL record at frame offset {pos}",
            path.display()
        ),
    };
    let mut pos = 0usize;
    let mut records = 0u64;
    while pos < payload.len() {
        match payload[pos] {
            TAG_WRITE => {
                let end = pos + 1 + 8 + crate::BLOCK_BYTES;
                if end > payload.len() {
                    return Err(malformed(pos));
                }
                let phys =
                    u64::from_le_bytes(payload[pos + 1..pos + 9].try_into().expect("8-byte slice"));
                let block =
                    Block::from_bytes(payload[pos + 9..end].try_into().expect("64-byte slice"));
                cache.insert(phys, block);
                pos = end;
            }
            TAG_REG => {
                let end = pos + 2 + crate::BLOCK_BYTES;
                if end > payload.len() {
                    return Err(malformed(pos));
                }
                let idx = payload[pos + 1];
                let block =
                    Block::from_bytes(payload[pos + 2..end].try_into().expect("64-byte slice"));
                regs.insert(idx, block);
                pos = end;
            }
            _ => return Err(malformed(pos)),
        }
        records += 1;
    }
    Ok(records)
}

impl NvmBackend for FileBackend {
    fn load(&self, phys: u64) -> Option<Block> {
        self.cache.get(&phys).copied()
    }

    fn store(&mut self, phys: u64, block: Block) {
        self.cache.insert(phys, block);
        self.push_write(phys, block);
    }

    fn touched(&self) -> usize {
        self.cache.len()
    }

    fn entries(&self) -> Vec<(u64, Block)> {
        let mut v: Vec<_> = self.cache.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    fn store_reg(&mut self, idx: u8, block: Block) {
        self.regs.insert(idx, block);
        self.push_reg(idx, block);
    }

    fn reg(&self, idx: u8) -> Option<Block> {
        self.regs.get(&idx).copied()
    }

    fn regs(&self) -> Vec<(u8, Block)> {
        self.regs.iter().map(|(&i, &b)| (i, b)).collect()
    }

    fn journal(&mut self, phys: u64, block: Block) {
        self.push_write(phys, block);
    }

    fn barrier(&mut self) -> Result<(), NvmError> {
        if self.suppressed {
            // The platform died: unflushed records evaporate.
            self.pending.clear();
            self.pending_ops.clear();
            self.pending_records = 0;
            return Ok(());
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let payload = std::mem::take(&mut self.pending);
        self.append_frame(&payload)?;
        self.wal_records += self.pending_records;
        for (phys, block) in self.pending_ops.drain(..) {
            self.replay.insert(phys, block);
        }
        self.pending_records = 0;
        if self.wal_records > COMPACT_FACTOR * self.live_records() + COMPACT_FLOOR {
            self.compact()?;
        }
        Ok(())
    }

    fn suppress_flushes(&mut self) {
        self.suppressed = true;
        self.pending.clear();
        self.pending_ops.clear();
        self.pending_records = 0;
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn freshness(&self) -> Freshness {
        self.freshness
    }

    fn bump_epoch(&mut self) -> Result<(), NvmError> {
        if self.suppressed {
            return Ok(());
        }
        // An empty frame: nothing to replay, but the epoch advance is
        // durable and anchored, so post-snapshot state is provably newer
        // than the snapshot it feeds.
        self.append_frame(&[])
    }

    fn frames_rejected(&self) -> u64 {
        self.rejected_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u64; 2] = [7, 13];

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anubis-walt-{}-{name}.img", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(anchor_path_for(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(anchor_path_for(p));
    }

    #[test]
    fn store_barrier_reopen_roundtrips() {
        let p = tmp("roundtrip");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(5, Block::filled(0x11));
            b.store_reg(2, Block::filled(0x22));
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(5), Some(Block::filled(0x11)));
        assert_eq!(b.reg(2), Some(Block::filled(0x22)));
        assert_eq!(b.touched(), 1);
        assert_eq!(b.epoch(), 1);
        assert_eq!(b.freshness(), Freshness::Untracked);
        cleanup(&p);
    }

    #[test]
    fn unflushed_stores_do_not_persist() {
        let p = tmp("unflushed");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB)); // never barriered
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        cleanup(&p);
    }

    #[test]
    fn journal_records_replay_without_live_store() {
        let p = tmp("journal");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.journal(9, Block::filled(0x99));
            assert_eq!(b.load(9), None); // WPQ-resident in this process
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(9), Some(Block::filled(0x99)));
        cleanup(&p);
    }

    #[test]
    fn last_record_wins_on_replay() {
        let p = tmp("lastwins");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(4, Block::filled(1));
            b.barrier().unwrap();
            b.journal(4, Block::filled(2));
            b.store(4, Block::filled(3));
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(4), Some(Block::filled(3)));
        cleanup(&p);
    }

    #[test]
    fn torn_tail_frame_is_truncated_away() {
        let p = tmp("torn");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB));
            b.barrier().unwrap();
        }
        // Chop bytes off the last frame, simulating a kill mid-append.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        assert_eq!(b.frames_rejected(), 1);
        // The torn tail is physically gone after reopen.
        assert!(std::fs::metadata(&p).unwrap().len() < len - 10);
        cleanup(&p);
    }

    #[test]
    fn bit_flipped_frame_is_typed_corruption() {
        let p = tmp("flip");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = HEADER_BYTES + FRAME_HEADER_BYTES + 20;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(matches!(err, NvmError::Backend { .. }), "got {err:?}");
        assert!(err.to_string().contains("checksum"), "got {err}");
        cleanup(&p);
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let p = tmp("magic");
        std::fs::write(&p, b"NOTAWAL!....").unwrap();
        assert!(matches!(
            FileBackend::open(&p).unwrap_err(),
            NvmError::Backend { .. }
        ));
        let mut img = MAGIC.to_vec();
        img.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&p, &img).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(err.to_string().contains("version"), "got {err}");
        cleanup(&p);
    }

    #[test]
    fn suppress_drops_pending_and_future_barriers() {
        let p = tmp("suppress");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB)); // pending when the cut fires
            b.suppress_flushes();
            b.store(3, Block::filled(0xCC));
            b.barrier().unwrap(); // no-op
            b.bump_epoch().unwrap(); // also a no-op on a dead platform
            assert!(b.flushes_suppressed());
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        assert_eq!(b.load(3), None);
        cleanup(&p);
    }

    #[test]
    fn compaction_preserves_journaled_undrained_records() {
        // The drill-campaign failure mode: a write journaled at commit
        // time sits in the WPQ (never store()d) while unrelated traffic
        // triggers compaction; a kill before the WPQ drains must still
        // find the journaled record in the reopened image.
        let p = tmp("compact-journal");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.journal(42, Block::filled(0x5A));
            b.barrier().unwrap();
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.barrier().unwrap();
            }
            assert_eq!(b.load(42), None, "journaled write must stay WPQ-resident");
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(42), Some(Block::filled(0x5A)));
        cleanup(&p);
    }

    #[test]
    fn compaction_keeps_last_wins_across_journal_and_store() {
        let p = tmp("compact-order");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(4, Block::filled(1));
            b.barrier().unwrap();
            b.journal(4, Block::filled(2)); // later record: wins on replay
            b.barrier().unwrap();
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.barrier().unwrap();
            }
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(4), Some(Block::filled(2)));
        cleanup(&p);
    }

    #[test]
    fn compaction_preserves_contents() {
        let p = tmp("compact");
        let pre_epoch;
        {
            let mut b = FileBackend::open(&p).unwrap();
            // Hammer one address so the WAL grows far beyond the live
            // footprint and compaction triggers.
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.store_reg(1, Block::filled((i % 13) as u8));
                b.barrier().unwrap();
            }
            pre_epoch = b.epoch();
            let size = std::fs::metadata(&p).unwrap().len();
            // ~2200 records × ~75 bytes would exceed 150 KiB without
            // compaction; the compacted log stays a small multiple of the
            // 2-record live footprint.
            assert!(size < 20_000, "WAL did not compact (size {size})");
        }
        let b = FileBackend::open(&p).unwrap();
        let last = COMPACT_FLOOR + 63;
        assert_eq!(b.load(7), Some(Block::filled((last % 251) as u8)));
        assert_eq!(b.reg(1), Some(Block::filled((last % 13) as u8)));
        // Compaction bumps the epoch; the rewritten image preserves it.
        assert_eq!(b.epoch(), pre_epoch);
        assert!(pre_epoch > COMPACT_FLOOR);
        cleanup(&p);
    }

    #[test]
    fn duplicated_frame_is_typed_epoch_corruption() {
        let p = tmp("dup");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB));
            b.barrier().unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // Duplicate the last frame verbatim: checksum-valid, epoch stale.
        let frame_len = FRAME_HEADER_BYTES + 73;
        let last = bytes.len() - frame_len;
        let dup = bytes[last..].to_vec();
        bytes.extend_from_slice(&dup);
        std::fs::write(&p, &bytes).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(err.to_string().contains("non-monotonic"), "got {err}");
        cleanup(&p);
    }

    #[test]
    fn reordered_frames_are_typed_epoch_corruption() {
        let p = tmp("reorder");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB));
            b.barrier().unwrap();
        }
        let bytes = std::fs::read(&p).unwrap();
        let frame_len = FRAME_HEADER_BYTES + 73;
        let f1 = HEADER_BYTES;
        let f2 = HEADER_BYTES + frame_len;
        let mut swapped = bytes[..HEADER_BYTES].to_vec();
        swapped.extend_from_slice(&bytes[f2..f2 + frame_len]);
        swapped.extend_from_slice(&bytes[f1..f1 + frame_len]);
        std::fs::write(&p, &swapped).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(err.to_string().contains("non-monotonic"), "got {err}");
        cleanup(&p);
    }

    #[test]
    fn tampered_frame_epoch_fails_checksum() {
        let p = tmp("epochtamper");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // The epoch field is covered by the frame checksum: bumping it
        // without re-checksumming must be detected.
        bytes[HEADER_BYTES + 12] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got {err}");
        cleanup(&p);
    }

    #[test]
    fn anchored_open_detects_rollback() {
        let p = tmp("rollback");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
        }
        let early = std::fs::read(&p).unwrap();
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x02));
            b.barrier().unwrap();
            b.store(1, Block::filled(0x03));
            b.barrier().unwrap();
        }
        // Roll the image (but not the anchor — on-chip NVRAM) back.
        std::fs::write(&p, &early).unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(
            b.freshness(),
            Freshness::RolledBack {
                anchored_epoch: 3,
                image_epoch: 1
            }
        );
        // Rollback is not overridable: the override policy sees it too.
        drop(b);
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Override).unwrap();
        assert!(matches!(b.freshness(), Freshness::RolledBack { .. }));
        cleanup(&p);
    }

    #[test]
    fn anchored_open_accepts_and_heals_image_ahead() {
        let p = tmp("heal");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
            b.store(1, Block::filled(0x02));
            b.barrier().unwrap();
        }
        // Rewind only the anchor, simulating a crash between the WAL
        // fsync and the anchor seal.
        let apath = anchor_path_for(&p);
        let _ = std::fs::remove_file(&apath);
        FreshnessAnchor::create(apath.clone(), KEY, 1).unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(b.freshness(), Freshness::Fresh { epoch: 2 });
        drop(b);
        // The heal resealed the anchor at the image epoch.
        assert_eq!(FreshnessAnchor::probe(&apath, KEY).unwrap(), Some(2));
        cleanup(&p);
    }

    #[test]
    fn anchored_open_refuses_forged_tail_beyond_crash_window() {
        let p = tmp("forgedtail");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
            b.store(1, Block::filled(0x02));
            b.barrier().unwrap();
        }
        // Forge two empty frames with valid (keyless) checksums at
        // epochs 3 and 4 — what a splicing adversary who knows the frame
        // format but cannot touch the anchor would append.
        let mut bytes = std::fs::read(&p).unwrap();
        for e in [3u64, 4] {
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&frame_crc(e, &[]).to_le_bytes());
            bytes.extend_from_slice(&e.to_le_bytes());
        }
        std::fs::write(&p, &bytes).unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(
            b.freshness(),
            Freshness::TailForged {
                anchored_epoch: 2,
                image_epoch: 4
            }
        );
        assert!(b.freshness().is_violation());
        drop(b);
        // Never overridable, and the anchor evidence is left untouched.
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Override).unwrap();
        assert!(matches!(b.freshness(), Freshness::TailForged { .. }));
        drop(b);
        assert_eq!(
            FreshnessAnchor::probe(&anchor_path_for(&p), KEY).unwrap(),
            Some(2)
        );
        cleanup(&p);
    }

    #[test]
    fn missing_and_corrupt_anchor_are_strict_violations() {
        let p = tmp("anchorloss");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
        }
        let apath = anchor_path_for(&p);
        std::fs::remove_file(&apath).unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(b.freshness(), Freshness::AnchorMissing { image_epoch: 1 });
        assert!(b.freshness().is_violation());
        drop(b);
        std::fs::write(&apath, b"garbage anchor bytes........................").unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(b.freshness(), Freshness::AnchorCorrupt { image_epoch: 1 });
        cleanup(&p);
    }

    #[test]
    fn override_reseals_missing_anchor_from_image() {
        let p = tmp("override");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
        }
        let apath = anchor_path_for(&p);
        std::fs::remove_file(&apath).unwrap();
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Override).unwrap();
        assert_eq!(b.freshness(), Freshness::Overridden { image_epoch: 1 });
        drop(b);
        // Resealed: the next strict open is clean again.
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(b.freshness(), Freshness::Fresh { epoch: 1 });
        cleanup(&p);
    }

    #[test]
    fn bump_epoch_is_durable_and_anchored() {
        let p = tmp("bump");
        {
            let mut b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
            b.store(1, Block::filled(0x01));
            b.barrier().unwrap();
            b.bump_epoch().unwrap();
            assert_eq!(b.epoch(), 2);
        }
        let b = FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict).unwrap();
        assert_eq!(b.epoch(), 2);
        assert_eq!(b.freshness(), Freshness::Fresh { epoch: 2 });
        assert_eq!(b.load(1), Some(Block::filled(0x01)));
        cleanup(&p);
    }
}
