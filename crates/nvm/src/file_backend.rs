//! File-backed NVM images: a write-ahead log with ordered flushes.
//!
//! The on-disk format is an append-only log:
//!
//! ```text
//! header:  "ANUBWAL1" (8 bytes) | version u32 LE
//! frame*:  payload_len u32 LE | fnv1a64(payload) u64 LE | payload
//! record*: tag 0 (block write): phys u64 LE | 64 contents bytes
//!          tag 1 (register):    idx u8     | 64 contents bytes
//! ```
//!
//! Every [`NvmBackend::store`] / [`NvmBackend::journal`] /
//! [`NvmBackend::store_reg`] appends a record to an in-memory pending
//! buffer; [`NvmBackend::barrier`] serializes the buffer as **one**
//! checksummed frame and fsyncs. A frame is therefore the atomicity unit:
//! on reopen, records are replayed in append order (last write to an
//! address wins) and a structurally torn tail frame — the signature of a
//! process killed mid-append — is discarded and truncated away. A frame
//! whose checksum fails any other way is *corruption*, surfaced as a
//! typed [`NvmError::Backend`], never a panic.
//!
//! The log is compacted (rewritten as one frame holding just the live
//! blocks and registers, then atomically renamed into place) once the
//! replayed record count sufficiently exceeds the live footprint.

use crate::backend::{fnv1a64, NvmBackend};
use crate::block::Block;
use crate::error::NvmError;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ANUBWAL1";
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 12;
const FRAME_HEADER_BYTES: usize = 12;

const TAG_WRITE: u8 = 0;
const TAG_REG: u8 = 1;

/// Compaction triggers when the flushed record count exceeds
/// `COMPACT_FACTOR × live footprint + COMPACT_FLOOR`.
const COMPACT_FACTOR: u64 = 4;
const COMPACT_FLOOR: u64 = 1024;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> NvmError {
    NvmError::Backend {
        reason: format!("{op} {}: {e}", path.display()),
    }
}

/// A durable, write-ahead-logged file backend for [`crate::NvmDevice`].
///
/// Persisted bytes never reflect an unflushed commit group: stores only
/// reach the file at [`NvmBackend::barrier`], which the persistence
/// domain invokes exactly where the simulated hardware persists (commit
/// group completion, ADR flush, power-up REDO). Reopening the image after
/// a SIGKILL therefore reconstructs precisely the state an in-process
/// `power_fail` would have left: every acknowledged commit group, nothing
/// of any group still in flight.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    path: PathBuf,
    cache: HashMap<u64, Block>,
    regs: BTreeMap<u8, Block>,
    /// Exact replay state of the flushed log: the last *flushed* record
    /// (store or journal) per address. `cache` deliberately excludes
    /// journaled-but-undrained writes — they are WPQ-resident and must
    /// stay invisible to `load` — but those records are already durable,
    /// so compaction must rewrite from this map, never from `cache`.
    replay: HashMap<u64, Block>,
    /// Serialized records awaiting the next barrier.
    pending: Vec<u8>,
    /// Structured mirror of the block records in `pending`, applied to
    /// `replay` once the frame durably lands.
    pending_ops: Vec<(u64, Block)>,
    pending_records: u64,
    /// Records sitting in flushed frames (reset by compaction).
    wal_records: u64,
    suppressed: bool,
}

impl FileBackend {
    /// Opens (or creates) a WAL image at `path`, replaying every intact
    /// frame. A structurally torn tail frame is truncated away.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] for I/O failures, a bad magic or
    /// version, or a checksum-corrupt frame that is not a torn tail.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, NvmError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read", &path, e))?;

        let mut cache = HashMap::new();
        let mut regs = BTreeMap::new();
        let mut wal_records = 0u64;

        let valid_len = if bytes.is_empty() {
            file.write_all(MAGIC)
                .map_err(|e| io_err("init", &path, e))?;
            file.write_all(&VERSION.to_le_bytes())
                .map_err(|e| io_err("init", &path, e))?;
            file.sync_data().map_err(|e| io_err("sync", &path, e))?;
            HEADER_BYTES
        } else {
            if bytes.len() < HEADER_BYTES || &bytes[..8] != MAGIC {
                return Err(NvmError::Backend {
                    reason: format!("{}: not an Anubis WAL image (bad magic)", path.display()),
                });
            }
            let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
            if version != VERSION {
                return Err(NvmError::Backend {
                    reason: format!(
                        "{}: unsupported WAL version {version} (expected {VERSION})",
                        path.display()
                    ),
                });
            }
            let mut pos = HEADER_BYTES;
            while pos < bytes.len() {
                if pos + FRAME_HEADER_BYTES > bytes.len() {
                    break; // torn tail: incomplete frame header
                }
                let len = u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ]) as usize;
                let crc = u64::from_le_bytes(
                    bytes[pos + 4..pos + 12]
                        .try_into()
                        .expect("slice is 8 bytes"),
                );
                let start = pos + FRAME_HEADER_BYTES;
                let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                    break; // torn tail: payload cut short by the kill
                };
                let payload = &bytes[start..end];
                if fnv1a64(payload) != crc {
                    // A complete frame with a bad checksum is bit
                    // corruption, not a torn append.
                    return Err(NvmError::Backend {
                        reason: format!(
                            "{}: corrupt WAL frame at byte {pos} (checksum mismatch)",
                            path.display()
                        ),
                    });
                }
                wal_records += replay_frame(&path, payload, &mut cache, &mut regs)?;
                pos = end;
            }
            pos
        };

        if (valid_len as u64) < bytes.len() as u64 {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate", &path, e))?;
            file.sync_data().map_err(|e| io_err("sync", &path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &path, e))?;

        Ok(FileBackend {
            file,
            path,
            replay: cache.clone(),
            cache,
            regs,
            pending: Vec::new(),
            pending_ops: Vec::new(),
            pending_records: 0,
            wal_records,
            suppressed: false,
        })
    }

    /// The image path this backend persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether [`NvmBackend::suppress_flushes`] has been invoked.
    pub fn flushes_suppressed(&self) -> bool {
        self.suppressed
    }

    fn push_write(&mut self, phys: u64, block: Block) {
        self.pending.push(TAG_WRITE);
        self.pending.extend_from_slice(&phys.to_le_bytes());
        self.pending.extend_from_slice(block.as_bytes());
        self.pending_ops.push((phys, block));
        self.pending_records += 1;
    }

    fn push_reg(&mut self, idx: u8, block: Block) {
        self.pending.push(TAG_REG);
        self.pending.push(idx);
        self.pending.extend_from_slice(block.as_bytes());
        self.pending_records += 1;
    }

    fn live_records(&self) -> u64 {
        (self.replay.len() + self.regs.len()) as u64
    }

    /// Rewrites the log as header + one frame of the replay state and
    /// atomically renames it into place. The baseline is `replay`, not
    /// `cache`: journaled-but-undrained writes are durable in the log
    /// being discarded and must survive into its replacement.
    fn compact(&mut self) -> Result<(), NvmError> {
        let mut payload = Vec::with_capacity(self.replay.len() * 73 + self.regs.len() * 66);
        let mut entries: Vec<_> = self.replay.iter().map(|(&k, &b)| (k, b)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        for (phys, block) in &entries {
            payload.push(TAG_WRITE);
            payload.extend_from_slice(&phys.to_le_bytes());
            payload.extend_from_slice(block.as_bytes());
        }
        for (&idx, block) in &self.regs {
            payload.push(TAG_REG);
            payload.push(idx);
            payload.extend_from_slice(block.as_bytes());
        }

        let tmp = self.path.with_extension("compact-tmp");
        let mut out = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        out.write_all(MAGIC).map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&VERSION.to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&fnv1a64(&payload).to_le_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        out.write_all(&payload)
            .map_err(|e| io_err("write", &tmp, e))?;
        out.sync_data().map_err(|e| io_err("sync", &tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("rename", &tmp, e))?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        out.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &tmp, e))?;
        self.file = out;
        self.wal_records = self.live_records();
        Ok(())
    }
}

fn replay_frame(
    path: &Path,
    payload: &[u8],
    cache: &mut HashMap<u64, Block>,
    regs: &mut BTreeMap<u8, Block>,
) -> Result<u64, NvmError> {
    let malformed = |pos: usize| NvmError::Backend {
        reason: format!(
            "{}: malformed WAL record at frame offset {pos}",
            path.display()
        ),
    };
    let mut pos = 0usize;
    let mut records = 0u64;
    while pos < payload.len() {
        match payload[pos] {
            TAG_WRITE => {
                let end = pos + 1 + 8 + crate::BLOCK_BYTES;
                if end > payload.len() {
                    return Err(malformed(pos));
                }
                let phys =
                    u64::from_le_bytes(payload[pos + 1..pos + 9].try_into().expect("8-byte slice"));
                let block =
                    Block::from_bytes(payload[pos + 9..end].try_into().expect("64-byte slice"));
                cache.insert(phys, block);
                pos = end;
            }
            TAG_REG => {
                let end = pos + 2 + crate::BLOCK_BYTES;
                if end > payload.len() {
                    return Err(malformed(pos));
                }
                let idx = payload[pos + 1];
                let block =
                    Block::from_bytes(payload[pos + 2..end].try_into().expect("64-byte slice"));
                regs.insert(idx, block);
                pos = end;
            }
            _ => return Err(malformed(pos)),
        }
        records += 1;
    }
    Ok(records)
}

impl NvmBackend for FileBackend {
    fn load(&self, phys: u64) -> Option<Block> {
        self.cache.get(&phys).copied()
    }

    fn store(&mut self, phys: u64, block: Block) {
        self.cache.insert(phys, block);
        self.push_write(phys, block);
    }

    fn touched(&self) -> usize {
        self.cache.len()
    }

    fn entries(&self) -> Vec<(u64, Block)> {
        let mut v: Vec<_> = self.cache.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    fn store_reg(&mut self, idx: u8, block: Block) {
        self.regs.insert(idx, block);
        self.push_reg(idx, block);
    }

    fn reg(&self, idx: u8) -> Option<Block> {
        self.regs.get(&idx).copied()
    }

    fn regs(&self) -> Vec<(u8, Block)> {
        self.regs.iter().map(|(&i, &b)| (i, b)).collect()
    }

    fn journal(&mut self, phys: u64, block: Block) {
        self.push_write(phys, block);
    }

    fn barrier(&mut self) -> Result<(), NvmError> {
        if self.suppressed {
            // The platform died: unflushed records evaporate.
            self.pending.clear();
            self.pending_ops.clear();
            self.pending_records = 0;
            return Ok(());
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + self.pending.len());
        frame.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&self.pending).to_le_bytes());
        frame.extend_from_slice(&self.pending);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path.clone(), e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path.clone(), e))?;
        self.wal_records += self.pending_records;
        for (phys, block) in self.pending_ops.drain(..) {
            self.replay.insert(phys, block);
        }
        self.pending.clear();
        self.pending_records = 0;
        if self.wal_records > COMPACT_FACTOR * self.live_records() + COMPACT_FLOOR {
            self.compact()?;
        }
        Ok(())
    }

    fn suppress_flushes(&mut self) {
        self.suppressed = true;
        self.pending.clear();
        self.pending_ops.clear();
        self.pending_records = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anubis-walt-{}-{name}.img", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn store_barrier_reopen_roundtrips() {
        let p = tmp("roundtrip");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(5, Block::filled(0x11));
            b.store_reg(2, Block::filled(0x22));
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(5), Some(Block::filled(0x11)));
        assert_eq!(b.reg(2), Some(Block::filled(0x22)));
        assert_eq!(b.touched(), 1);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn unflushed_stores_do_not_persist() {
        let p = tmp("unflushed");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB)); // never barriered
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn journal_records_replay_without_live_store() {
        let p = tmp("journal");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.journal(9, Block::filled(0x99));
            assert_eq!(b.load(9), None); // WPQ-resident in this process
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(9), Some(Block::filled(0x99)));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn last_record_wins_on_replay() {
        let p = tmp("lastwins");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(4, Block::filled(1));
            b.barrier().unwrap();
            b.journal(4, Block::filled(2));
            b.store(4, Block::filled(3));
            b.barrier().unwrap();
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(4), Some(Block::filled(3)));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_frame_is_truncated_away() {
        let p = tmp("torn");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB));
            b.barrier().unwrap();
        }
        // Chop bytes off the last frame, simulating a kill mid-append.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        // The torn tail is physically gone after reopen.
        assert!(std::fs::metadata(&p).unwrap().len() < len - 10);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn bit_flipped_frame_is_typed_corruption() {
        let p = tmp("flip");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = HEADER_BYTES + FRAME_HEADER_BYTES + 20;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(matches!(err, NvmError::Backend { .. }), "got {err:?}");
        assert!(err.to_string().contains("checksum"), "got {err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let p = tmp("magic");
        std::fs::write(&p, b"NOTAWAL!....").unwrap();
        assert!(matches!(
            FileBackend::open(&p).unwrap_err(),
            NvmError::Backend { .. }
        ));
        let mut img = MAGIC.to_vec();
        img.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&p, &img).unwrap();
        let err = FileBackend::open(&p).unwrap_err();
        assert!(err.to_string().contains("version"), "got {err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn suppress_drops_pending_and_future_barriers() {
        let p = tmp("suppress");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(1, Block::filled(0xAA));
            b.barrier().unwrap();
            b.store(2, Block::filled(0xBB)); // pending when the cut fires
            b.suppress_flushes();
            b.store(3, Block::filled(0xCC));
            b.barrier().unwrap(); // no-op
            assert!(b.flushes_suppressed());
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(1), Some(Block::filled(0xAA)));
        assert_eq!(b.load(2), None);
        assert_eq!(b.load(3), None);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn compaction_preserves_journaled_undrained_records() {
        // The drill-campaign failure mode: a write journaled at commit
        // time sits in the WPQ (never store()d) while unrelated traffic
        // triggers compaction; a kill before the WPQ drains must still
        // find the journaled record in the reopened image.
        let p = tmp("compact-journal");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.journal(42, Block::filled(0x5A));
            b.barrier().unwrap();
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.barrier().unwrap();
            }
            assert_eq!(b.load(42), None, "journaled write must stay WPQ-resident");
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(42), Some(Block::filled(0x5A)));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn compaction_keeps_last_wins_across_journal_and_store() {
        let p = tmp("compact-order");
        {
            let mut b = FileBackend::open(&p).unwrap();
            b.store(4, Block::filled(1));
            b.barrier().unwrap();
            b.journal(4, Block::filled(2)); // later record: wins on replay
            b.barrier().unwrap();
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.barrier().unwrap();
            }
        }
        let b = FileBackend::open(&p).unwrap();
        assert_eq!(b.load(4), Some(Block::filled(2)));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn compaction_preserves_contents() {
        let p = tmp("compact");
        {
            let mut b = FileBackend::open(&p).unwrap();
            // Hammer one address so the WAL grows far beyond the live
            // footprint and compaction triggers.
            for i in 0..(COMPACT_FLOOR + 64) {
                b.store(7, Block::filled((i % 251) as u8));
                b.store_reg(1, Block::filled((i % 13) as u8));
                b.barrier().unwrap();
            }
            let size = std::fs::metadata(&p).unwrap().len();
            // ~2200 records × ~75 bytes would exceed 150 KiB without
            // compaction; the compacted log stays a small multiple of the
            // 2-record live footprint.
            assert!(size < 20_000, "WAL did not compact (size {size})");
        }
        let b = FileBackend::open(&p).unwrap();
        let last = COMPACT_FLOOR + 63;
        assert_eq!(b.load(7), Some(Block::filled((last % 251) as u8)));
        assert_eq!(b.reg(1), Some(Block::filled((last % 13) as u8)));
        let _ = std::fs::remove_file(&p);
    }
}
