//! The Write Pending Queue (WPQ).

use crate::addr::BlockAddr;
use crate::backend::NvmBackend;
use crate::block::Block;
use crate::device::NvmDevice;
use crate::domain::WriteOp;
use std::collections::VecDeque;

/// Default number of WPQ entries — "tens of entries" per the paper (§2.7);
/// we use 32 as a representative value.
pub const DEFAULT_WPQ_ENTRIES: usize = 32;

/// The Write Pending Queue inside the memory controller.
///
/// Anything inserted into the WPQ is considered **persistent**: the ADR
/// (Asynchronous DRAM Self-Refresh) feature guarantees enough residual
/// power to flush the queue contents to the NVM device on a power failure.
///
/// During normal operation entries drain to the device lazily; when the
/// queue is full, an insertion forces the oldest entry out first (modeling
/// the write-buffer back-pressure the timing simulator charges for).
#[derive(Clone, Debug)]
pub struct Wpq {
    entries: VecDeque<WriteOp>,
    capacity: usize,
    forced_drains: u64,
}

impl Wpq {
    /// Creates a WPQ with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be nonzero");
        Wpq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            forced_drains: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many insertions had to evict the oldest entry to the device
    /// because the queue was full.
    pub fn forced_drains(&self) -> u64 {
        self.forced_drains
    }

    /// Inserts a write into the persistent domain. If the queue is full the
    /// oldest entry is written to the device first.
    ///
    /// Writes to the same address coalesce onto the existing entry, as in a
    /// real write queue.
    pub fn insert<B: NvmBackend>(&mut self, op: WriteOp, device: &mut NvmDevice<B>) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.addr == op.addr) {
            existing.block = op.block;
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some(oldest) = self.entries.pop_front() {
                device.write(oldest.addr, oldest.block);
                self.forced_drains += 1;
            }
        }
        self.entries.push_back(op);
    }

    /// Bounded insert: coalesces like [`Wpq::insert`], but refuses a new
    /// entry when the queue is full instead of force-draining the oldest.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NvmError::WpqFull`] when the queue is at capacity
    /// and `op` does not coalesce onto an existing entry; the queue is
    /// unchanged in that case.
    pub fn try_insert(&mut self, op: WriteOp) -> Result<(), crate::NvmError> {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.addr == op.addr) {
            existing.block = op.block;
            return Ok(());
        }
        if self.entries.len() == self.capacity {
            return Err(crate::NvmError::WpqFull {
                capacity: self.capacity,
            });
        }
        self.entries.push_back(op);
        Ok(())
    }

    /// Drains every pending entry to the device (ADR flush or idle drain).
    pub fn flush<B: NvmBackend>(&mut self, device: &mut NvmDevice<B>) {
        for op in self.entries.drain(..) {
            device.write(op.addr, op.block);
        }
    }

    /// Looks up a pending (not yet drained) write to `addr`, if any — the
    /// controller must see its own queued writes.
    pub fn pending(&self, addr: BlockAddr) -> Option<Block> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.block)
    }
}

impl Default for Wpq {
    fn default() -> Self {
        Wpq::new(DEFAULT_WPQ_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64) -> WriteOp {
        WriteOp::new(BlockAddr::new(i), Block::filled(i as u8))
    }

    #[test]
    fn insert_then_flush_persists() {
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(4);
        wpq.insert(op(1), &mut dev);
        wpq.insert(op(2), &mut dev);
        assert_eq!(wpq.len(), 2);
        assert!(dev.peek(BlockAddr::new(1)).is_zeroed());
        wpq.flush(&mut dev);
        assert!(wpq.is_empty());
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(1));
        assert_eq!(dev.peek(BlockAddr::new(2)), Block::filled(2));
    }

    #[test]
    fn full_queue_forces_oldest_out() {
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(2);
        wpq.insert(op(1), &mut dev);
        wpq.insert(op(2), &mut dev);
        wpq.insert(op(3), &mut dev);
        assert_eq!(wpq.len(), 2);
        assert_eq!(wpq.forced_drains(), 1);
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(1));
        assert!(dev.peek(BlockAddr::new(2)).is_zeroed());
    }

    #[test]
    fn same_address_coalesces() {
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(2);
        wpq.insert(op(1), &mut dev);
        wpq.insert(
            WriteOp::new(BlockAddr::new(1), Block::filled(0xFF)),
            &mut dev,
        );
        assert_eq!(wpq.len(), 1);
        assert_eq!(wpq.pending(BlockAddr::new(1)), Some(Block::filled(0xFF)));
        wpq.flush(&mut dev);
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(0xFF));
    }

    #[test]
    fn pending_lookup_misses_other_addresses() {
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(2);
        wpq.insert(op(1), &mut dev);
        assert_eq!(wpq.pending(BlockAddr::new(2)), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        Wpq::new(0);
    }

    #[test]
    fn try_insert_refuses_when_full_but_coalesces() {
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(2);
        wpq.try_insert(op(1)).unwrap();
        wpq.try_insert(op(2)).unwrap();
        let err = wpq.try_insert(op(3)).unwrap_err();
        assert_eq!(err, crate::NvmError::WpqFull { capacity: 2 });
        assert_eq!(wpq.len(), 2);
        // Coalescing onto a resident entry still succeeds at capacity.
        wpq.try_insert(WriteOp::new(BlockAddr::new(1), Block::filled(0xEE)))
            .unwrap();
        assert_eq!(wpq.pending(BlockAddr::new(1)), Some(Block::filled(0xEE)));
        assert_eq!(wpq.forced_drains(), 0);
        wpq.flush(&mut dev);
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(0xEE));
    }
}
