//! Deterministic fault injection for the persistence domain.
//!
//! The Anubis paper's whole claim is *recovery correctness under real
//! failure semantics*, so the NVM model must be able to fail the way real
//! hardware fails: power can be lost between any two device-level writes of
//! a single logical memory operation, a 64-byte block write can tear at a
//! word boundary, and cells can flip bits that the ECC layer may or may not
//! be able to repair.
//!
//! A [`FaultPlan`] is armed on a [`crate::PersistenceDomain`] via
//! [`crate::PersistenceDomain::arm_fault`] and fires **once**, when the
//! domain is about to perform its `after`-th (0-based) counted device-level
//! write — i.e. `FaultPlan::power_cut_after(k)` lets exactly `k` writes
//! reach the persistent domain and cuts power on the next one. Counted
//! writes are the drains from the persistent registers into the WPQ, the
//! single point through which every controller scheme persists state; the
//! running count is exposed as
//! [`crate::PersistenceDomain::persist_writes`] so harnesses can first
//! dry-run a workload, then sweep `k` over every index.
//!
//! Fault semantics:
//!
//! * [`FaultKind::PowerCut`] — the triggering write does not reach the WPQ;
//!   the ADR flushes what the WPQ already holds, and the domain powers off
//!   returning [`crate::NvmError::PowerLost`]. The in-flight commit group
//!   stays in the NVM-backed persistent registers with `DONE_BIT` set, so
//!   [`crate::PersistenceDomain::power_up`] REDOes it — this is the
//!   *recoverable* fault class the paper's two-stage commit is built for.
//! * [`FaultKind::TornWrite`] — models a write that tears inside the
//!   device: the first `words` 8-byte words of the new content land, the
//!   tail keeps the old content, and the persistent registers lose the rest
//!   of the group (as if the tear happened in the final ADR drain after the
//!   registers were freed). Recovery is *allowed* to fail here, but only
//!   with a typed detection error — never by silently serving the torn
//!   block as valid data.
//! * [`FaultKind::BitFlip`] — the triggering write lands with the given
//!   bits inverted and execution continues normally; detection is deferred
//!   to the ECC / MAC / integrity-tree layers on the next read.

use crate::block::Block;

/// A rejected [`FaultPlan`] construction: the requested fault shape is not
/// physically meaningful (a 0- or 8-word "tear" is not a tear; a bit flip
/// needs at least one in-range bit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// `TornWrite { words }` outside `1..=7`: landing 0 words is a power
    /// cut, landing all 8 is a clean write.
    TornWidth {
        /// The rejected word count.
        words: usize,
    },
    /// A bit-flip plan with an empty bit list.
    EmptyBitFlip,
    /// A bit-flip index at or beyond the 512 bits of a block.
    BitOutOfRange {
        /// The rejected bit index.
        bit: usize,
    },
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::TornWidth { words } => write!(
                f,
                "a torn write must land 1..={} words, got {words}",
                Block::WORDS - 1
            ),
            FaultPlanError::EmptyBitFlip => write!(f, "bit-flip fault needs at least one bit"),
            FaultPlanError::BitOutOfRange { bit } => {
                write!(f, "bit index out of range: {bit} (block has 512 bits)")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// What kind of fault fires when a [`FaultPlan`] triggers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Power is lost before the triggering write enters the WPQ.
    PowerCut,
    /// The triggering block write tears at a word boundary: the first
    /// `words` (1..=7) 8-byte words are new, the rest stay old.
    TornWrite {
        /// Number of leading 8-byte words of the new content that land.
        words: usize,
    },
    /// The triggering block lands with these bit positions (0..512)
    /// inverted.
    BitFlip {
        /// Bit positions to invert within the 64-byte block.
        bits: Vec<usize>,
    },
}

/// A one-shot fault: fires when the domain is about to perform its
/// `after`-th (0-based, counted since domain creation) device-level write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    after: u64,
    kind: FaultKind,
}

impl FaultPlan {
    /// Power cut after exactly `k` counted writes have persisted.
    pub fn power_cut_after(k: u64) -> Self {
        FaultPlan {
            after: k,
            kind: FaultKind::PowerCut,
        }
    }

    /// Torn write: the write with counted index `k` lands with only its
    /// first `words` words updated, then power is lost.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= words <= 7` (0 or 8 words would not be a tear).
    /// [`FaultPlan::try_torn_write_after`] is the non-panicking variant.
    pub fn torn_write_after(k: u64, words: usize) -> Self {
        Self::try_torn_write_after(k, words).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Torn write, validated at construction.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::TornWidth`] unless `1 <= words <= 7`.
    pub fn try_torn_write_after(k: u64, words: usize) -> Result<Self, FaultPlanError> {
        if !(1..Block::WORDS).contains(&words) {
            return Err(FaultPlanError::TornWidth { words });
        }
        Ok(FaultPlan {
            after: k,
            kind: FaultKind::TornWrite { words },
        })
    }

    /// Bit flips: the write with counted index `k` lands with `bits`
    /// inverted.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or any index is >= 512.
    /// [`FaultPlan::try_bit_flip_after`] is the non-panicking variant.
    pub fn bit_flip_after(k: u64, bits: Vec<usize>) -> Self {
        Self::try_bit_flip_after(k, bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Bit flips, validated at construction.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::EmptyBitFlip`] for an empty bit list and
    /// [`FaultPlanError::BitOutOfRange`] for any index >= 512.
    pub fn try_bit_flip_after(k: u64, bits: Vec<usize>) -> Result<Self, FaultPlanError> {
        if bits.is_empty() {
            return Err(FaultPlanError::EmptyBitFlip);
        }
        if let Some(&bit) = bits.iter().find(|&&b| b >= 512) {
            return Err(FaultPlanError::BitOutOfRange { bit });
        }
        Ok(FaultPlan {
            after: k,
            kind: FaultKind::BitFlip { bits },
        })
    }

    /// The counted write index this plan triggers on.
    pub fn trigger_index(&self) -> u64 {
        self.after
    }

    /// The fault fired at the trigger point.
    pub fn kind(&self) -> &FaultKind {
        &self.kind
    }

    pub(crate) fn into_kind(self) -> FaultKind {
        self.kind
    }
}

/// Splices a torn block: the first `words` words from `new`, the rest
/// from `old`.
pub(crate) fn tear_block(old: &Block, new: &Block, words: usize) -> Block {
    let mut out = *old;
    for i in 0..words.min(Block::WORDS) {
        out.set_word(i, new.word(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_capture_trigger_and_kind() {
        let p = FaultPlan::power_cut_after(7);
        assert_eq!(p.trigger_index(), 7);
        assert_eq!(p.kind(), &FaultKind::PowerCut);

        let t = FaultPlan::torn_write_after(3, 5);
        assert_eq!(t.kind(), &FaultKind::TornWrite { words: 5 });

        let f = FaultPlan::bit_flip_after(0, vec![1, 500]);
        assert_eq!(f.kind(), &FaultKind::BitFlip { bits: vec![1, 500] });
    }

    #[test]
    fn tear_splices_at_word_boundary() {
        let old = Block::filled(0xAA);
        let new = Block::filled(0x55);
        let torn = tear_block(&old, &new, 3);
        for i in 0..Block::WORDS {
            let expect = if i < 3 { new.word(i) } else { old.word(i) };
            assert_eq!(torn.word(i), expect, "word {i}");
        }
    }

    #[test]
    #[should_panic(expected = "torn write")]
    fn full_width_tear_rejected() {
        let _ = FaultPlan::torn_write_after(0, 8);
    }

    #[test]
    fn fallible_constructors_reject_invalid_shapes() {
        assert_eq!(
            FaultPlan::try_torn_write_after(0, 0),
            Err(FaultPlanError::TornWidth { words: 0 })
        );
        assert_eq!(
            FaultPlan::try_torn_write_after(0, Block::WORDS),
            Err(FaultPlanError::TornWidth { words: 8 })
        );
        for words in 1..Block::WORDS {
            let p = FaultPlan::try_torn_write_after(4, words).expect("1..=7 words is a tear");
            assert_eq!(p.kind(), &FaultKind::TornWrite { words });
        }
        assert_eq!(
            FaultPlan::try_bit_flip_after(0, Vec::new()),
            Err(FaultPlanError::EmptyBitFlip)
        );
        assert_eq!(
            FaultPlan::try_bit_flip_after(0, vec![3, 512]),
            Err(FaultPlanError::BitOutOfRange { bit: 512 })
        );
        assert!(FaultPlan::try_bit_flip_after(0, vec![0, 511]).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_bit_flip_rejected() {
        let _ = FaultPlan::bit_flip_after(0, Vec::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_bit_index_rejected() {
        let _ = FaultPlan::bit_flip_after(0, vec![512]);
    }
}
