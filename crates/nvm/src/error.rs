//! Error types for the persistence domain.

use crate::addr::BlockAddr;
use crate::snapshot::SnapshotError;
use core::fmt;

/// Errors raised by the NVM persistence domain.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvmError {
    /// An access fell outside the device capacity.
    OutOfRange {
        /// The offending address.
        addr: BlockAddr,
        /// Device capacity in blocks.
        capacity_blocks: u64,
    },
    /// A commit group exceeded the capacity of the persistent registers.
    CommitGroupTooLarge {
        /// Number of write operations in the rejected group.
        group_len: usize,
        /// Capacity of the persistent register file.
        capacity: usize,
    },
    /// The domain is powered off; it must be recovered before use.
    PoweredOff,
    /// An injected fault cut power mid-operation. The controller must
    /// propagate this without caching inconsistent state; the domain
    /// requires [`crate::PersistenceDomain::power_up`] before further use.
    PowerLost,
    /// A bounded insert found the WPQ full (used by back-pressure-aware
    /// callers; the plain insert path force-drains instead).
    WpqFull {
        /// Queue capacity in entries.
        capacity: usize,
    },
    /// A snapshot image failed validation (see [`SnapshotError`]).
    Snapshot(SnapshotError),
    /// The storage backend behind the device failed — an I/O error or a
    /// corrupt on-disk image for [`crate::FileBackend`].
    Backend {
        /// Human-readable cause, including the image path when known.
        reason: String,
    },
}

impl From<SnapshotError> for NvmError {
    fn from(e: SnapshotError) -> Self {
        NvmError::Snapshot(e)
    }
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfRange { addr, capacity_blocks } => write!(
                f,
                "block address {addr} outside device capacity of {capacity_blocks} blocks"
            ),
            NvmError::CommitGroupTooLarge { group_len, capacity } => write!(
                f,
                "commit group of {group_len} writes exceeds the {capacity}-entry persistent register file"
            ),
            NvmError::PoweredOff => write!(f, "persistence domain is powered off"),
            NvmError::PowerLost => {
                write!(f, "power lost mid-operation by an injected fault")
            }
            NvmError::WpqFull { capacity } => {
                write!(f, "write pending queue is full ({capacity} entries)")
            }
            NvmError::Snapshot(e) => write!(f, "snapshot: {e}"),
            NvmError::Backend { reason } => write!(f, "storage backend: {reason}"),
        }
    }
}

impl std::error::Error for NvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NvmError::OutOfRange {
            addr: BlockAddr::new(10),
            capacity_blocks: 4,
        };
        assert!(e.to_string().contains("0xa"));
        let e = NvmError::CommitGroupTooLarge {
            group_len: 99,
            capacity: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(NvmError::PoweredOff.to_string().contains("powered off"));
        assert!(NvmError::PowerLost.to_string().contains("power lost"));
        assert!(NvmError::WpqFull { capacity: 32 }
            .to_string()
            .contains("32"));
    }
}
