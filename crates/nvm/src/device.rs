//! The sparse NVM device model.

use crate::addr::{BlockAddr, Region, RegionAllocator};
use crate::backend::{MemBackend, NvmBackend};
use crate::block::Block;
use crate::error::NvmError;
use crate::quarantine::{QuarantineError, RemapTable};
use crate::stats::NvmStats;
use std::collections::HashMap;

/// Countdown for a power cut *during recovery*: once it expires, every
/// subsequent counted write is silently dropped (the cells never see it),
/// modeling the tail of a recovery pass that was still in flight when
/// power died. Recovery writes go straight to the device (they bypass the
/// two-stage commit), so this lives here rather than in the domain's
/// [`crate::FaultPlan`] machinery.
#[derive(Clone, Debug)]
struct WriteCut {
    remaining: u64,
    fired: bool,
}

/// A sparse, block-addressable non-volatile memory device.
///
/// Never-written blocks read as all zeros, which lets the simulation cover
/// terabyte-scale address spaces while only storing the touched footprint.
/// Contents survive [`crate::PersistenceDomain::power_fail`]; only the
/// caches and queues in front of the device are volatile.
///
/// The device is generic over a storage [`NvmBackend`] that owns the
/// block contents: the default [`MemBackend`] keeps them in a hash map,
/// while [`crate::FileBackend`] persists them to a write-ahead-logged
/// file image that survives process death.
///
/// Blocks can be attributed to named [`Region`]s (registered via
/// [`NvmDevice::register_regions`]) so per-region read/write counts are
/// available for endurance and write-amplification studies.
///
/// # Example
///
/// ```
/// use anubis_nvm::{NvmDevice, BlockAddr, Block};
/// let mut dev = NvmDevice::new(1 << 30); // 1 GiB
/// let a = BlockAddr::new(42);
/// assert!(dev.read(a).is_zeroed());
/// dev.write(a, Block::filled(7));
/// assert_eq!(dev.read(a), Block::filled(7));
/// ```
#[derive(Clone, Debug)]
pub struct NvmDevice<B: NvmBackend = MemBackend> {
    capacity_blocks: u64,
    store: B,
    write_counts: HashMap<u64, u64>,
    regions: RegionAllocator,
    stats: NvmStats,
    quarantine: RemapTable,
    write_cut: Option<WriteCut>,
}

impl NvmDevice<MemBackend> {
    /// Creates an in-memory device of `capacity_bytes` bytes (rounded down
    /// to whole 64-byte blocks). Capacity is an addressing limit, not an
    /// allocation: memory is materialized lazily per touched block.
    pub fn new(capacity_bytes: u64) -> Self {
        NvmDevice::with_backend(capacity_bytes, MemBackend::new())
    }
}

impl<B: NvmBackend> NvmDevice<B> {
    /// Creates a device of `capacity_bytes` bytes over an existing storage
    /// backend (e.g. a [`crate::FileBackend`] replayed from an image).
    pub fn with_backend(capacity_bytes: u64, backend: B) -> Self {
        NvmDevice {
            capacity_blocks: capacity_bytes / crate::BLOCK_BYTES as u64,
            store: backend,
            write_counts: HashMap::new(),
            regions: RegionAllocator::new(),
            stats: NvmStats::new(),
            quarantine: RemapTable::new(),
            write_cut: None,
        }
    }

    /// The storage backend (block contents and register file).
    pub fn backend(&self) -> &B {
        &self.store
    }

    /// Mutable access to the storage backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.store
    }

    /// Flushes the backend's write-ahead buffer — the ordered durability
    /// point. A no-op for the in-memory backend.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] when the storage medium fails.
    pub fn flush_backend(&mut self) -> Result<(), NvmError> {
        self.store.barrier()
    }

    /// Stores one persistent-register image (controllers mirror their
    /// on-chip persistent registers here so restart recovery can restore
    /// them). Durable at the next [`NvmDevice::flush_backend`].
    pub fn set_reg(&mut self, idx: u8, block: Block) {
        self.store.store_reg(idx, block);
    }

    /// Loads a persistent-register image.
    pub fn reg(&self, idx: u8) -> Option<Block> {
        self.store.reg(idx)
    }

    /// Journals a write that entered the persistent domain but is still
    /// WPQ-resident, so durable backends replay it on reopen.
    pub(crate) fn journal_write(&mut self, addr: BlockAddr, block: Block) {
        let phys = self.quarantine.resolve(addr);
        self.store.journal(phys.index(), block);
    }

    /// Registers the region map used to attribute accesses in
    /// [`NvmDevice::stats`]. Replaces any previous map and resets the
    /// per-region counters to match the new layout.
    pub fn register_regions(&mut self, regions: RegionAllocator) {
        let names = regions.regions().iter().map(Region::name).collect();
        self.regions = regions;
        self.stats.configure_regions(names);
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Number of blocks that have ever been written (the materialized
    /// footprint).
    pub fn touched_blocks(&self) -> usize {
        self.store.touched()
    }

    /// Checked read. Takes `&self`: reading does not logically mutate the
    /// device, and the access statistics live behind interior mutability.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::OutOfRange`] if `addr` is beyond capacity.
    pub fn try_read(&self, addr: BlockAddr) -> Result<Block, NvmError> {
        self.check(addr)?;
        self.stats.record_read(self.regions.region_index_of(addr));
        let phys = self.quarantine.resolve(addr);
        Ok(self.store.load(phys.index()).unwrap_or_default())
    }

    /// Reads a block, counting the access.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond device capacity (see [`NvmDevice::try_read`]
    /// for the checked variant).
    pub fn read(&self, addr: BlockAddr) -> Block {
        self.try_read(addr).expect("read within device capacity")
    }

    /// Reads without counting the access — for inspection by tests and
    /// reporting code that must not perturb statistics.
    pub fn peek(&self, addr: BlockAddr) -> Block {
        self.store.load(addr.index()).unwrap_or_default()
    }

    /// Checked write.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::OutOfRange`] if `addr` is beyond capacity.
    pub fn try_write(&mut self, addr: BlockAddr, block: Block) -> Result<(), NvmError> {
        self.check(addr)?;
        if let Some(cut) = self.write_cut.as_mut() {
            if cut.remaining == 0 {
                // Power died mid-recovery: the write never reaches the
                // cells. Reported via `write_cut_fired`, not an error —
                // a dying platform gets no error path either. A dying
                // platform also flushes nothing more, so durable
                // backends stop persisting from this instant.
                cut.fired = true;
                self.store.suppress_flushes();
                return Ok(());
            }
            cut.remaining -= 1;
        }
        let phys = self.quarantine.resolve(addr);
        let count = self.write_counts.entry(phys.index()).or_insert(0);
        *count += 1;
        let count = *count;
        self.stats
            .record_write(self.regions.region_index_of(addr), count, addr);
        self.store.store(phys.index(), block);
        Ok(())
    }

    /// Writes a block, counting the access.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond device capacity (see
    /// [`NvmDevice::try_write`] for the checked variant).
    pub fn write(&mut self, addr: BlockAddr, block: Block) {
        self.try_write(addr, block)
            .expect("write within device capacity");
    }

    /// Overwrites a block without counting the access — used to initialize
    /// memory images before an experiment starts.
    pub fn poke(&mut self, addr: BlockAddr, block: Block) {
        assert!(
            addr.index() < self.capacity_blocks,
            "poke at {addr} beyond capacity of {} blocks",
            self.capacity_blocks
        );
        self.store.store(addr.index(), block);
    }

    /// Flips one bit of one block in place — the attacker primitive for
    /// integrity experiments. Does not perturb statistics.
    pub fn tamper_flip_bit(&mut self, addr: BlockAddr, bit: usize) {
        let mut b = self.peek(addr);
        b.flip_bit(bit);
        self.store.store(addr.index(), b);
    }

    /// Replays an old value into a block (replay-attack primitive).
    /// Does not perturb statistics.
    pub fn tamper_replay(&mut self, addr: BlockAddr, old: Block) {
        self.store.store(addr.index(), old);
    }

    /// Number of times `addr` has been written (endurance tracking).
    pub fn writes_to(&self, addr: BlockAddr) -> u64 {
        self.write_counts.get(&addr.index()).copied().unwrap_or(0)
    }

    /// Access statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Resets access statistics (contents and wear counts are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Registers the spare pool used by [`NvmDevice::quarantine_block`].
    /// A no-op once a pool is present (see [`RemapTable::install_spares`]).
    pub fn install_spare_pool(&mut self, spares: Vec<BlockAddr>) {
        self.quarantine.install_spares(spares);
    }

    /// Quarantines `addr`: future counted reads/writes of `addr` are
    /// redirected to the returned spare block. Returns the existing
    /// mapping if already quarantined, or `None` when the spare pool is
    /// exhausted (the block is then retired in place by the caller).
    pub fn quarantine_block(&mut self, addr: BlockAddr) -> Option<BlockAddr> {
        self.quarantine.quarantine(addr)
    }

    /// Whether `addr` has been remapped into the spare region.
    pub fn is_quarantined(&self, addr: BlockAddr) -> bool {
        self.quarantine.is_quarantined(addr)
    }

    /// The bad-block remap table (mappings, spares left, lost-line count).
    pub fn quarantine_table(&self) -> &RemapTable {
        &self.quarantine
    }

    /// Records `n` permanently lost data lines in the remap table.
    pub fn record_lost_lines(&mut self, n: u64) {
        self.quarantine.record_lost(n);
    }

    /// Serializes the remap table for persistence into a `qtable` region.
    pub fn quarantine_table_blocks(&self) -> Vec<Block> {
        self.quarantine.to_blocks()
    }

    /// Restores the remap table from blocks previously produced by
    /// [`NvmDevice::quarantine_table_blocks`], keeping the installed
    /// spare pool.
    ///
    /// # Errors
    ///
    /// Propagates [`QuarantineError`] for malformed input; the current
    /// table is left untouched on error.
    pub fn load_quarantine_table(&mut self, blocks: &[Block]) -> Result<(), QuarantineError> {
        let mut table = RemapTable::from_blocks(blocks)?;
        table.inherit_pool(&self.quarantine);
        self.quarantine = table;
        Ok(())
    }

    /// Arms a power cut during recovery: the next `after` counted writes
    /// land, every write past that is silently dropped until
    /// [`NvmDevice::clear_write_cut`].
    pub fn arm_write_cut(&mut self, after: u64) {
        self.write_cut = Some(WriteCut {
            remaining: after,
            fired: false,
        });
    }

    /// Whether an armed write cut has started dropping writes.
    pub fn write_cut_fired(&self) -> bool {
        self.write_cut.as_ref().is_some_and(|c| c.fired)
    }

    /// Disarms the write cut; subsequent writes land normally.
    pub fn clear_write_cut(&mut self) {
        self.write_cut = None;
    }

    fn check(&self, addr: BlockAddr) -> Result<(), NvmError> {
        if addr.index() < self.capacity_blocks {
            Ok(())
        } else {
            Err(NvmError::OutOfRange {
                addr,
                capacity_blocks: self.capacity_blocks,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let dev = NvmDevice::new(1 << 20);
        assert!(dev.read(BlockAddr::new(100)).is_zeroed());
        assert_eq!(dev.stats().reads(), 1);
        assert_eq!(dev.touched_blocks(), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut dev = NvmDevice::new(1 << 20);
        let b = Block::from_words([9, 8, 7, 6, 5, 4, 3, 2]);
        dev.write(BlockAddr::new(5), b);
        assert_eq!(dev.read(BlockAddr::new(5)), b);
        assert_eq!(dev.touched_blocks(), 1);
        assert_eq!(dev.writes_to(BlockAddr::new(5)), 1);
    }

    #[test]
    fn out_of_range_is_error() {
        let mut dev = NvmDevice::new(128); // 2 blocks
        assert!(dev.try_read(BlockAddr::new(1)).is_ok());
        assert_eq!(
            dev.try_read(BlockAddr::new(2)),
            Err(NvmError::OutOfRange {
                addr: BlockAddr::new(2),
                capacity_blocks: 2
            })
        );
        assert!(dev.try_write(BlockAddr::new(2), Block::zeroed()).is_err());
    }

    #[test]
    fn peek_and_poke_do_not_count() {
        let mut dev = NvmDevice::new(1 << 20);
        dev.poke(BlockAddr::new(1), Block::filled(1));
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(1));
        assert_eq!(dev.stats().reads(), 0);
        assert_eq!(dev.stats().writes(), 0);
        assert_eq!(dev.writes_to(BlockAddr::new(1)), 0);
    }

    #[test]
    fn region_attribution() {
        let mut alloc = RegionAllocator::new();
        let data = alloc.alloc("data", 10);
        let ctr = alloc.alloc("ctr", 10);
        let mut dev = NvmDevice::new(1 << 20);
        dev.register_regions(alloc);
        dev.write(data.nth(0), Block::zeroed());
        dev.write(ctr.nth(0), Block::zeroed());
        dev.write(ctr.nth(1), Block::zeroed());
        assert_eq!(dev.stats().writes_in("data"), 1);
        assert_eq!(dev.stats().writes_in("ctr"), 2);
    }

    #[test]
    fn tamper_flips_one_bit() {
        let mut dev = NvmDevice::new(1 << 20);
        dev.poke(BlockAddr::new(3), Block::zeroed());
        dev.tamper_flip_bit(BlockAddr::new(3), 17);
        let b = dev.peek(BlockAddr::new(3));
        let ones: u32 = b.as_bytes().iter().map(|x| x.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn quarantined_block_redirects_counted_io_only() {
        let mut dev = NvmDevice::new(1 << 20);
        dev.install_spare_pool(vec![BlockAddr::new(100), BlockAddr::new(101)]);
        let a = BlockAddr::new(7);
        dev.write(a, Block::filled(0xEE));
        let spare = dev.quarantine_block(a).expect("pool has spares");
        assert_eq!(spare, BlockAddr::new(100));
        assert!(dev.is_quarantined(a));
        // Counted I/O follows the remap: the stale physical cells are
        // invisible, the spare starts zeroed.
        assert!(dev.read(a).is_zeroed());
        dev.write(a, Block::filled(0x11));
        assert_eq!(dev.read(a), Block::filled(0x11));
        assert_eq!(dev.peek(spare), Block::filled(0x11));
        // Raw access still sees the retired cells.
        assert_eq!(dev.peek(a), Block::filled(0xEE));
    }

    #[test]
    fn quarantine_table_persists_and_reloads() {
        let mut dev = NvmDevice::new(1 << 20);
        dev.install_spare_pool(vec![BlockAddr::new(200), BlockAddr::new(201)]);
        dev.quarantine_block(BlockAddr::new(3));
        dev.record_lost_lines(1);
        let image = dev.quarantine_table_blocks();
        let mut fresh = NvmDevice::new(1 << 20);
        fresh.install_spare_pool(vec![BlockAddr::new(200), BlockAddr::new(201)]);
        fresh.load_quarantine_table(&image).unwrap();
        assert!(fresh.is_quarantined(BlockAddr::new(3)));
        assert_eq!(fresh.quarantine_table().lost_lines(), 1);
        // The reloaded table keeps consuming the pool past used spares.
        assert_eq!(
            fresh.quarantine_block(BlockAddr::new(9)),
            Some(BlockAddr::new(201))
        );
    }

    #[test]
    fn write_cut_drops_the_tail() {
        let mut dev = NvmDevice::new(1 << 20);
        dev.arm_write_cut(2);
        dev.write(BlockAddr::new(0), Block::filled(1));
        dev.write(BlockAddr::new(1), Block::filled(2));
        assert!(!dev.write_cut_fired());
        dev.write(BlockAddr::new(2), Block::filled(3)); // dropped
        dev.write(BlockAddr::new(3), Block::filled(4)); // dropped
        assert!(dev.write_cut_fired());
        assert_eq!(dev.peek(BlockAddr::new(1)), Block::filled(2));
        assert!(dev.peek(BlockAddr::new(2)).is_zeroed());
        dev.clear_write_cut();
        dev.write(BlockAddr::new(2), Block::filled(5));
        assert_eq!(dev.peek(BlockAddr::new(2)), Block::filled(5));
    }

    #[test]
    fn wear_tracking_counts_repeat_writes() {
        let mut dev = NvmDevice::new(1 << 20);
        for _ in 0..7 {
            dev.write(BlockAddr::new(9), Block::zeroed());
        }
        assert_eq!(dev.writes_to(BlockAddr::new(9)), 7);
        assert_eq!(dev.stats().max_writes_to_one_block(), 7);
    }
}
