//! Non-volatile main-memory substrate for the Anubis reproduction.
//!
//! This crate models the *persistence domain* of an NVM-equipped system the
//! way the Anubis paper (ISCA'19, §2.7) assumes it:
//!
//! * [`NvmDevice`] — a sparse, block-addressable (64 B) phase-change-memory
//!   device. Contents survive crashes. Reads/writes are counted per region
//!   for endurance/write-amplification studies.
//! * [`Wpq`] — the Write Pending Queue inside the memory controller. Writes
//!   inserted here are *in the persistent domain*: on power failure the ADR
//!   feature guarantees enough energy to flush the WPQ to the device.
//! * [`PersistentRegisters`] — a small set of on-chip NVM-backed registers
//!   plus a `DONE_BIT`, used for the two-stage REDO commit that makes a
//!   data+metadata update group atomic with respect to crashes.
//! * [`PersistenceDomain`] — ties the three together and exposes the
//!   [`PersistenceDomain::commit_group`] primitive used by every memory
//!   controller scheme in the `anubis` crate, plus [`PersistenceDomain::power_fail`]
//!   for crash injection.
//!
//! Everything *outside* this crate (metadata caches, controller state other
//! than explicitly-persistent registers) is volatile and is lost on a crash.
//!
//! # Example
//!
//! ```
//! use anubis_nvm::{BlockAddr, Block, PersistenceDomain, WriteOp};
//!
//! let mut domain = PersistenceDomain::new(1 << 20); // 1 MiB device
//! let addr = BlockAddr::new(3);
//! domain
//!     .commit_group([WriteOp::new(addr, Block::filled(0xAB))])
//!     .expect("commit fits in the persistent registers");
//! domain.power_fail(); // ADR flushes the WPQ
//! assert_eq!(domain.device().peek(addr), Block::filled(0xAB));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod anchor;
mod backend;
mod block;
mod device;
mod domain;
mod error;
mod fault;
mod file_backend;
mod pregs;
mod quarantine;
mod rng;
mod snapshot;
mod stats;
mod wpq;

pub use addr::{BlockAddr, Region, RegionAllocator, BLOCK_BYTES};
pub use anchor::{anchor_path_for, AnchorError, AnchorPolicy, Freshness, FreshnessAnchor};
pub use backend::{MemBackend, NvmBackend};
pub use block::Block;
pub use device::NvmDevice;
pub use domain::{PersistenceDomain, WriteOp};
pub use error::NvmError;
pub use fault::{FaultKind, FaultPlan, FaultPlanError};
pub use file_backend::FileBackend;
pub use pregs::{CommitPhase, PersistentRegisters, PREG_CAPACITY};
pub use quarantine::{QuarantineError, RemapTable};
pub use rng::SplitMix64;
pub use snapshot::{Snapshot, SnapshotError};
pub use stats::{NvmStats, StatsSnapshot};
pub use wpq::{Wpq, DEFAULT_WPQ_ENTRIES};
