//! Block addressing and region bookkeeping.

use core::fmt;

/// Size of one memory block (cache line) in bytes.
///
/// The whole system — data, encryption counters, Merkle-tree nodes and
/// shadow tables — is organized in 64-byte blocks, matching the paper's
/// cache-line granularity (Table 1).
pub const BLOCK_BYTES: usize = 64;

/// The index of a 64-byte block in the physical address space.
///
/// A newtype rather than a bare `u64` so data addresses, counter addresses
/// and shadow-table addresses cannot be silently confused with byte offsets.
///
/// # Example
///
/// ```
/// use anubis_nvm::BlockAddr;
/// let a = BlockAddr::from_byte_addr(128);
/// assert_eq!(a, BlockAddr::new(2));
/// assert_eq!(a.byte_addr(), 128);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Creates a block address from a byte address (truncating to block
    /// granularity).
    #[inline]
    pub const fn from_byte_addr(byte: u64) -> Self {
        BlockAddr(byte / BLOCK_BYTES as u64)
    }

    /// The block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this block.
    #[inline]
    pub const fn byte_addr(self) -> u64 {
        self.0 * BLOCK_BYTES as u64
    }

    /// Returns the address `offset` blocks after this one.
    #[inline]
    pub const fn offset(self, offset: u64) -> Self {
        BlockAddr(self.0 + offset)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<BlockAddr> for u64 {
    fn from(a: BlockAddr) -> u64 {
        a.0
    }
}

/// A contiguous range of blocks with a purpose label, e.g. the data region,
/// the counter region, one Merkle-tree level, or a shadow table.
///
/// Regions are handed out by a [`RegionAllocator`] so the memory-controller
/// crate can lay out an arbitrary number of metadata regions without this
/// crate knowing anything about integrity trees.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    name: &'static str,
    base: BlockAddr,
    len: u64,
}

impl Region {
    /// Creates a region covering `len` blocks starting at `base`.
    pub fn new(name: &'static str, base: BlockAddr, len: u64) -> Self {
        Region { name, base, len }
    }

    /// The purpose label given at allocation time.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First block of the region.
    pub fn base(&self) -> BlockAddr {
        self.base
    }

    /// Number of blocks in the region.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        addr.index() >= self.base.index() && addr.index() < self.base.index() + self.len
    }

    /// Address of the `i`-th block in the region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn nth(&self, i: u64) -> BlockAddr {
        assert!(
            i < self.len,
            "region {}: index {} out of {}",
            self.name,
            i,
            self.len
        );
        self.base.offset(i)
    }

    /// The offset of `addr` within the region, if it is contained.
    pub fn offset_of(&self, addr: BlockAddr) -> Option<u64> {
        self.contains(addr)
            .then(|| addr.index() - self.base.index())
    }

    /// Iterates over every block address in the region.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (0..self.len).map(move |i| self.base.offset(i))
    }
}

/// Sequentially parcels a physical address space into [`Region`]s.
///
/// # Example
///
/// ```
/// use anubis_nvm::RegionAllocator;
/// let mut alloc = RegionAllocator::new();
/// let data = alloc.alloc("data", 1024);
/// let counters = alloc.alloc("counters", 16);
/// assert_eq!(counters.base().index(), 1024);
/// assert_eq!(alloc.total_blocks(), 1040);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegionAllocator {
    next: u64,
    regions: Vec<Region>,
}

impl RegionAllocator {
    /// Creates an empty allocator starting at block 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next `len` blocks as a named region.
    pub fn alloc(&mut self, name: &'static str, len: u64) -> Region {
        let region = Region::new(name, BlockAddr::new(self.next), len);
        self.next += len;
        self.regions.push(region.clone());
        region
    }

    /// Total number of blocks allocated so far.
    pub fn total_blocks(&self) -> u64 {
        self.next
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Finds the region containing `addr`, if any.
    pub fn region_of(&self, addr: BlockAddr) -> Option<&Region> {
        self.region_index_of(addr).map(|i| &self.regions[i])
    }

    /// Index (allocation order) of the region containing `addr`, if any.
    ///
    /// Regions are handed out sequentially, so their bases are sorted:
    /// a binary search replaces the linear scan that used to run on every
    /// counted device access.
    pub fn region_index_of(&self, addr: BlockAddr) -> Option<usize> {
        let n = self
            .regions
            .partition_point(|r| r.base().index() <= addr.index());
        // Candidate: the last region starting at or before `addr`. Empty
        // regions share their base with the next region but sort before
        // it and contain nothing, so the last candidate is the right one.
        let i = n.checked_sub(1)?;
        self.regions[i].contains(addr).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_roundtrip() {
        let a = BlockAddr::new(7);
        assert_eq!(a.byte_addr(), 7 * 64);
        assert_eq!(BlockAddr::from_byte_addr(a.byte_addr()), a);
        assert_eq!(BlockAddr::from_byte_addr(a.byte_addr() + 63), a);
        assert_eq!(u64::from(a), 7);
    }

    #[test]
    fn block_addr_display() {
        assert_eq!(format!("{}", BlockAddr::new(255)), "0xff");
        assert_eq!(format!("{:?}", BlockAddr::new(255)), "BlockAddr(0xff)");
    }

    #[test]
    fn region_contains_and_offset() {
        let r = Region::new("r", BlockAddr::new(10), 5);
        assert!(!r.contains(BlockAddr::new(9)));
        assert!(r.contains(BlockAddr::new(10)));
        assert!(r.contains(BlockAddr::new(14)));
        assert!(!r.contains(BlockAddr::new(15)));
        assert_eq!(r.offset_of(BlockAddr::new(12)), Some(2));
        assert_eq!(r.offset_of(BlockAddr::new(15)), None);
        assert_eq!(r.nth(0), BlockAddr::new(10));
        assert_eq!(r.iter().count(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn region_nth_out_of_bounds_panics() {
        Region::new("r", BlockAddr::new(0), 3).nth(3);
    }

    #[test]
    fn allocator_is_sequential_and_disjoint() {
        let mut alloc = RegionAllocator::new();
        let a = alloc.alloc("a", 100);
        let b = alloc.alloc("b", 50);
        let c = alloc.alloc("c", 1);
        assert_eq!(a.base().index(), 0);
        assert_eq!(b.base().index(), 100);
        assert_eq!(c.base().index(), 150);
        assert_eq!(alloc.total_blocks(), 151);
        assert_eq!(alloc.region_of(BlockAddr::new(120)).unwrap().name(), "b");
        assert_eq!(alloc.region_of(BlockAddr::new(151)), None);
        assert_eq!(alloc.regions().len(), 3);
    }

    #[test]
    fn region_index_search_matches_linear_scan() {
        let mut alloc = RegionAllocator::new();
        alloc.alloc("a", 100);
        alloc.alloc("gap", 0); // empty region sharing its base with "b"
        alloc.alloc("b", 50);
        alloc.alloc("c", 1);
        for idx in 0..(alloc.total_blocks() + 4) {
            let addr = BlockAddr::new(idx);
            let linear = alloc.regions().iter().position(|r| r.contains(addr));
            assert_eq!(alloc.region_index_of(addr), linear, "addr {addr}");
        }
        assert_eq!(alloc.region_index_of(BlockAddr::new(100)), Some(2));
        assert_eq!(
            RegionAllocator::new().region_index_of(BlockAddr::new(0)),
            None
        );
    }

    #[test]
    fn empty_region() {
        let r = Region::new("none", BlockAddr::new(4), 0);
        assert!(r.is_empty());
        assert!(!r.contains(BlockAddr::new(4)));
    }
}
