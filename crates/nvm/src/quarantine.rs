//! Bad-block quarantine: a persistent remap table that retires
//! unrecoverable blocks into a spare region.
//!
//! When recovery concludes that a block's content cannot be restored (the
//! escalation ladder in `anubis::supervisor` exhausted ECC correction,
//! counter reconstruction and tree rebuild), the block is *quarantined*:
//! its address is remapped to a block from a reserved spare pool and the
//! original cells are never used again — the standard bad-block management
//! move of NAND/PCM controllers. Subsequent reads and writes through
//! [`crate::NvmDevice::try_read`] / [`crate::NvmDevice::try_write`] follow
//! the remap transparently; `peek`/`poke` and the tamper primitives stay
//! raw so tests and attackers keep addressing physical cells.
//!
//! The table itself must survive power loss, so it serializes to 64-byte
//! blocks ([`RemapTable::to_blocks`]) that the controllers persist into a
//! dedicated `qtable` region and reload with [`RemapTable::from_blocks`].

use crate::addr::BlockAddr;
use crate::block::Block;
use std::collections::BTreeMap;

/// Header magic for a serialized remap table ("ANBQUAR1").
const QTABLE_MAGIC: u64 = 0x414e_4251_5541_5231;

/// Remapped-address pairs packed per serialized block after the header.
const PAIRS_PER_BLOCK: usize = 4;

/// A malformed serialized remap table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuarantineError {
    /// The header block does not carry the expected magic.
    BadMagic,
    /// Fewer entry blocks than the header's entry count requires.
    Truncated,
}

impl core::fmt::Display for QuarantineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuarantineError::BadMagic => write!(f, "quarantine table header magic mismatch"),
            QuarantineError::Truncated => write!(f, "quarantine table truncated"),
        }
    }
}

impl std::error::Error for QuarantineError {}

/// The persistent bad-block remap table plus its spare pool.
///
/// Deterministic by construction: mappings iterate in address order
/// (`BTreeMap`) and spares are consumed in pool order, so two runs that
/// quarantine the same blocks in the same order produce bit-identical
/// tables regardless of recovery lane count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RemapTable {
    map: BTreeMap<u64, u64>,
    spares: Vec<u64>,
    next_spare: u64,
    lost_lines: u64,
}

impl RemapTable {
    /// An empty table with no spare pool.
    pub fn new() -> Self {
        RemapTable::default()
    }

    /// Registers the spare pool (device block addresses reserved for
    /// remapping). A no-op once a pool is present, so repeated
    /// installation — or installation after a [`RemapTable::from_blocks`]
    /// reload — cannot reseat spares that are already in use
    /// (`next_spare` indexes into the original pool order).
    pub fn install_spares(&mut self, spares: Vec<BlockAddr>) {
        if self.spares.is_empty() {
            self.spares = spares.into_iter().map(BlockAddr::index).collect();
        }
    }

    /// Copies the spare pool from `other` (the pre-reload table) if this
    /// table has none — used when deserializing, since the pool is not
    /// part of the persistent image.
    pub fn inherit_pool(&mut self, other: &RemapTable) {
        if self.spares.is_empty() {
            self.spares = other.spares.clone();
        }
    }

    /// Quarantines `addr`: returns the spare block it now maps to, or the
    /// existing mapping if it was already quarantined. Once the spare
    /// pool is exhausted the block is retired *in place* (an identity
    /// mapping — the cells keep serving, but the line is marked bad), up
    /// to [`RemapTable::capacity`] total entries; beyond that the table
    /// is full and `None` is returned (the caller can only count the
    /// loss).
    pub fn quarantine(&mut self, addr: BlockAddr) -> Option<BlockAddr> {
        if let Some(&spare) = self.map.get(&addr.index()) {
            return Some(BlockAddr::new(spare));
        }
        if let Some(&spare) = self.spares.get(self.next_spare as usize) {
            self.next_spare += 1;
            self.map.insert(addr.index(), spare);
            return Some(BlockAddr::new(spare));
        }
        if (self.map.len() as u64) < self.capacity() {
            self.map.insert(addr.index(), addr.index());
            return Some(addr);
        }
        None
    }

    /// Maximum entries the table records: twice the spare pool, matching
    /// the `qtable` region the layouts reserve (remapped entries plus an
    /// equal budget of in-place retirements).
    pub fn capacity(&self) -> u64 {
        2 * self.spares.len() as u64
    }

    /// Whether `addr` has been quarantined.
    pub fn is_quarantined(&self, addr: BlockAddr) -> bool {
        self.map.contains_key(&addr.index())
    }

    /// The physical block backing `addr` (identity unless quarantined).
    pub fn resolve(&self, addr: BlockAddr) -> BlockAddr {
        match self.map.get(&addr.index()) {
            Some(&spare) => BlockAddr::new(spare),
            None => addr,
        }
    }

    /// Number of quarantined blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no block is quarantined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Spare blocks still available.
    pub fn spares_left(&self) -> u64 {
        (self.spares.len() as u64).saturating_sub(self.next_spare)
    }

    /// Data lines whose content was permanently lost (counted by the
    /// scrub pass when it retires a line that held non-zero data).
    pub fn lost_lines(&self) -> u64 {
        self.lost_lines
    }

    /// Records `n` permanently lost data lines.
    pub fn record_lost(&mut self, n: u64) {
        self.lost_lines += n;
    }

    /// Iterates `(original, spare)` mappings in address order.
    pub fn mappings(&self) -> impl Iterator<Item = (BlockAddr, BlockAddr)> + '_ {
        self.map
            .iter()
            .map(|(&o, &s)| (BlockAddr::new(o), BlockAddr::new(s)))
    }

    /// Number of 64-byte blocks [`RemapTable::to_blocks`] emits for
    /// `entries` mappings: one header plus packed pair blocks.
    pub fn blocks_for(entries: u64) -> u64 {
        1 + entries.div_ceil(PAIRS_PER_BLOCK as u64)
    }

    /// Serializes the table (header + packed `(orig, spare)` pairs). The
    /// spare pool is *not* serialized: it is a property of the layout and
    /// is re-installed on startup.
    pub fn to_blocks(&self) -> Vec<Block> {
        let mut out = Vec::with_capacity(Self::blocks_for(self.map.len() as u64) as usize);
        out.push(Block::from_words([
            QTABLE_MAGIC,
            self.map.len() as u64,
            self.lost_lines,
            self.next_spare,
            0,
            0,
            0,
            0,
        ]));
        let pairs: Vec<(u64, u64)> = self.map.iter().map(|(&o, &s)| (o, s)).collect();
        for chunk in pairs.chunks(PAIRS_PER_BLOCK) {
            let mut b = Block::zeroed();
            for (i, &(o, s)) in chunk.iter().enumerate() {
                b.set_word(2 * i, o);
                b.set_word(2 * i + 1, s);
            }
            out.push(b);
        }
        out
    }

    /// Deserializes a table written by [`RemapTable::to_blocks`]. The
    /// caller re-installs the spare pool afterwards.
    ///
    /// # Errors
    ///
    /// [`QuarantineError::BadMagic`] if the header is not a quarantine
    /// table, [`QuarantineError::Truncated`] if entry blocks are missing.
    pub fn from_blocks(blocks: &[Block]) -> Result<Self, QuarantineError> {
        let header = blocks.first().ok_or(QuarantineError::Truncated)?;
        if header.word(0) != QTABLE_MAGIC {
            return Err(QuarantineError::BadMagic);
        }
        let entries = header.word(1) as usize;
        let lost_lines = header.word(2);
        let next_spare = header.word(3);
        let need = entries.div_ceil(PAIRS_PER_BLOCK);
        if blocks.len() < 1 + need {
            return Err(QuarantineError::Truncated);
        }
        let mut map = BTreeMap::new();
        for e in 0..entries {
            let b = &blocks[1 + e / PAIRS_PER_BLOCK];
            let i = e % PAIRS_PER_BLOCK;
            map.insert(b.word(2 * i), b.word(2 * i + 1));
        }
        Ok(RemapTable {
            map,
            spares: Vec::new(),
            next_spare,
            lost_lines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(start: u64, n: u64) -> Vec<BlockAddr> {
        (start..start + n).map(BlockAddr::new).collect()
    }

    #[test]
    fn quarantine_consumes_spares_in_order() {
        let mut t = RemapTable::new();
        t.install_spares(pool(100, 2));
        assert_eq!(t.quarantine(BlockAddr::new(5)), Some(BlockAddr::new(100)));
        assert_eq!(t.quarantine(BlockAddr::new(9)), Some(BlockAddr::new(101)));
        // Re-quarantine returns the existing mapping, no new spare.
        assert_eq!(t.quarantine(BlockAddr::new(5)), Some(BlockAddr::new(100)));
        // Pool exhausted: retired in place (identity mapping) until the
        // table itself is full.
        assert_eq!(t.quarantine(BlockAddr::new(7)), Some(BlockAddr::new(7)));
        assert!(t.is_quarantined(BlockAddr::new(7)));
        assert_eq!(t.resolve(BlockAddr::new(7)), BlockAddr::new(7));
        assert_eq!(t.len(), 3);
        assert_eq!(t.spares_left(), 0);
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.quarantine(BlockAddr::new(8)), Some(BlockAddr::new(8)));
        assert_eq!(t.quarantine(BlockAddr::new(11)), None, "table full");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn resolve_redirects_only_quarantined() {
        let mut t = RemapTable::new();
        t.install_spares(pool(50, 4));
        t.quarantine(BlockAddr::new(3));
        assert_eq!(t.resolve(BlockAddr::new(3)), BlockAddr::new(50));
        assert_eq!(t.resolve(BlockAddr::new(4)), BlockAddr::new(4));
        assert!(t.is_quarantined(BlockAddr::new(3)));
        assert!(!t.is_quarantined(BlockAddr::new(4)));
    }

    #[test]
    fn serialization_roundtrips() {
        let mut t = RemapTable::new();
        t.install_spares(pool(1000, 9));
        for a in [1u64, 17, 2, 300, 4, 5, 60] {
            t.quarantine(BlockAddr::new(a));
        }
        t.record_lost(3);
        let blocks = t.to_blocks();
        assert_eq!(blocks.len() as u64, RemapTable::blocks_for(7));
        let mut back = RemapTable::from_blocks(&blocks).unwrap();
        back.install_spares(pool(1000, 9));
        assert_eq!(back.lost_lines(), 3);
        assert_eq!(back.len(), 7);
        for a in [1u64, 17, 2, 300, 4, 5, 60] {
            assert_eq!(
                back.resolve(BlockAddr::new(a)),
                t.resolve(BlockAddr::new(a))
            );
        }
        // Reload must not reseat spares already consumed.
        assert_eq!(
            back.quarantine(BlockAddr::new(99)),
            t.quarantine(BlockAddr::new(99))
        );
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert_eq!(
            RemapTable::from_blocks(&[]),
            Err(QuarantineError::Truncated)
        );
        assert_eq!(
            RemapTable::from_blocks(&[Block::filled(0xAB)]),
            Err(QuarantineError::BadMagic)
        );
        let mut t = RemapTable::new();
        t.install_spares(pool(10, 8));
        for a in 0..5u64 {
            t.quarantine(BlockAddr::new(100 + a));
        }
        let mut blocks = t.to_blocks();
        blocks.pop();
        assert_eq!(
            RemapTable::from_blocks(&blocks),
            Err(QuarantineError::Truncated)
        );
    }

    #[test]
    fn empty_table_serializes_to_header_only() {
        let t = RemapTable::new();
        let blocks = t.to_blocks();
        assert_eq!(blocks.len(), 1);
        let back = RemapTable::from_blocks(&blocks).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.lost_lines(), 0);
    }
}
