//! The 64-byte memory block.

use crate::addr::BLOCK_BYTES;
use core::fmt;

/// A 64-byte memory block — the unit of every read and write in the system.
///
/// Provides word-level accessors because counters, hashes and shadow-table
/// entries are laid out as 8-byte fields within blocks.
///
/// # Example
///
/// ```
/// use anubis_nvm::Block;
/// let mut b = Block::zeroed();
/// b.set_word(3, 0xDEAD_BEEF);
/// assert_eq!(b.word(3), 0xDEAD_BEEF);
/// assert_eq!(b.word(0), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: [u8; BLOCK_BYTES],
}

impl Block {
    /// Number of 8-byte words in a block.
    pub const WORDS: usize = BLOCK_BYTES / 8;

    /// An all-zero block. NVM reads of never-written locations return this.
    #[inline]
    pub const fn zeroed() -> Self {
        Block {
            bytes: [0u8; BLOCK_BYTES],
        }
    }

    /// A block with every byte set to `byte`.
    #[inline]
    pub const fn filled(byte: u8) -> Self {
        Block {
            bytes: [byte; BLOCK_BYTES],
        }
    }

    /// Builds a block from raw bytes.
    #[inline]
    pub const fn from_bytes(bytes: [u8; BLOCK_BYTES]) -> Self {
        Block { bytes }
    }

    /// Builds a block from eight 64-bit little-endian words.
    pub fn from_words(words: [u64; Self::WORDS]) -> Self {
        let mut b = Block::zeroed();
        for (i, w) in words.into_iter().enumerate() {
            b.set_word(i, w);
        }
        b
    }

    /// Borrows the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; BLOCK_BYTES] {
        &self.bytes
    }

    /// Mutably borrows the raw bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; BLOCK_BYTES] {
        &mut self.bytes
    }

    /// Reads the `i`-th 8-byte little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Block::WORDS`.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        let s = &self.bytes[i * 8..i * 8 + 8];
        u64::from_le_bytes(s.try_into().expect("8-byte slice"))
    }

    /// Writes the `i`-th 8-byte little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Block::WORDS`.
    #[inline]
    pub fn set_word(&mut self, i: usize, value: u64) {
        self.bytes[i * 8..i * 8 + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// All eight words as an array.
    pub fn words(&self) -> [u64; Self::WORDS] {
        core::array::from_fn(|i| self.word(i))
    }

    /// XORs another block into this one (used for one-time-pad
    /// encryption/decryption).
    pub fn xor_with(&mut self, other: &Block) {
        for (a, b) in self.bytes.iter_mut().zip(other.bytes.iter()) {
            *a ^= b;
        }
    }

    /// Returns `self ^ other` without mutating either operand.
    #[must_use]
    pub fn xored(&self, other: &Block) -> Block {
        let mut out = *self;
        out.xor_with(other);
        out
    }

    /// Flips a single bit — the tamper primitive used by integrity tests.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    pub fn flip_bit(&mut self, bit: usize) {
        assert!(bit < BLOCK_BYTES * 8, "bit index {bit} out of range");
        self.bytes[bit / 8] ^= 1 << (bit % 8);
    }

    /// Whether every byte is zero.
    pub fn is_zeroed(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::zeroed()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block[")?;
        for w in self.words() {
            write!(f, " {w:016x}")?;
        }
        write!(f, " ]")
    }
}

impl From<[u8; BLOCK_BYTES]> for Block {
    fn from(bytes: [u8; BLOCK_BYTES]) -> Self {
        Block::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for Block {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip() {
        let mut b = Block::zeroed();
        for i in 0..Block::WORDS {
            b.set_word(i, (i as u64 + 1) * 0x0101_0101_0101_0101);
        }
        for i in 0..Block::WORDS {
            assert_eq!(b.word(i), (i as u64 + 1) * 0x0101_0101_0101_0101);
        }
        let b2 = Block::from_words(b.words());
        assert_eq!(b, b2);
    }

    #[test]
    fn xor_is_involutive() {
        let a = Block::filled(0x5A);
        let pad = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let cipher = a.xored(&pad);
        assert_ne!(cipher, a);
        assert_eq!(cipher.xored(&pad), a);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut b = Block::zeroed();
        b.flip_bit(100);
        let ones: u32 = b.as_bytes().iter().map(|x| x.count_ones()).sum();
        assert_eq!(ones, 1);
        b.flip_bit(100);
        assert!(b.is_zeroed());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_out_of_range() {
        Block::zeroed().flip_bit(512);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Block::zeroed()).is_empty());
    }

    #[test]
    fn default_is_zeroed() {
        assert!(Block::default().is_zeroed());
        assert!(!Block::filled(1).is_zeroed());
    }
}
