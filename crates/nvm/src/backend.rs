//! Pluggable storage backends for the sparse NVM device.
//!
//! [`NvmDevice`](crate::NvmDevice) is generic over an [`NvmBackend`] that
//! owns the actual block contents. Two implementations exist:
//!
//! * [`MemBackend`] — the original process-lifetime hash map. Zero-cost,
//!   volatile across process death; the default everywhere.
//! * [`FileBackend`](crate::FileBackend) — a write-ahead-logged file image
//!   whose durability boundary matches the simulated persistence domain:
//!   persisted bytes never reflect an unflushed commit group, so a
//!   SIGKILLed process can be restarted against the image and recovered.
//!
//! The backend also hosts the *persistent register file*: a small set of
//! numbered 64-byte register images the controllers use to mirror their
//! on-chip persistent registers (tree root, reencryption log, shadow-table
//! root) so restart-entry recovery can restore them.

use crate::anchor::Freshness;
use crate::block::Block;
use crate::error::NvmError;
use std::collections::{BTreeMap, HashMap};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit checksum — the in-tree integrity check for WAL frames and
/// snapshot images (no external dependencies).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a 64-bit stream from `seed`, so multi-part inputs
/// (frame epoch ‖ payload) checksum without concatenating buffers.
pub(crate) fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Storage abstraction behind [`NvmDevice`](crate::NvmDevice).
///
/// Implementations own the sparse block map plus the persistent register
/// file. The `Send + Sync` supertraits let recovery lanes share a device
/// reference across threads.
///
/// # Durability contract
///
/// [`NvmBackend::store`] and [`NvmBackend::journal`] may buffer; only
/// [`NvmBackend::barrier`] makes buffered records durable, and it must do
/// so atomically (a torn barrier must be indistinguishable from no
/// barrier on reopen). The persistence domain calls `barrier` exactly at
/// the points where the simulated hardware guarantees persistence: the
/// end of a two-stage commit group, an ADR flush on power failure, and
/// the REDO pass at power-up.
pub trait NvmBackend: std::fmt::Debug + Send + Sync {
    /// Loads the block at physical index `phys`, if ever stored.
    fn load(&self, phys: u64) -> Option<Block>;

    /// Stores a block at physical index `phys`.
    fn store(&mut self, phys: u64, block: Block);

    /// Number of distinct physical blocks ever stored (materialized
    /// footprint).
    fn touched(&self) -> usize;

    /// Every stored block, sorted by physical index.
    fn entries(&self) -> Vec<(u64, Block)>;

    /// Stores one persistent-register image.
    fn store_reg(&mut self, idx: u8, block: Block);

    /// Loads a persistent-register image.
    fn reg(&self, idx: u8) -> Option<Block>;

    /// Every register image, sorted by index.
    fn regs(&self) -> Vec<(u8, Block)>;

    /// Journals a write that is in the persistent domain but still
    /// WPQ-resident in this process: durable backends must replay it on
    /// reopen without updating the live block map (the in-process WPQ
    /// still holds it). Volatile backends ignore it.
    fn journal(&mut self, phys: u64, block: Block) {
        let _ = (phys, block);
    }

    /// Makes everything stored/journaled so far durable.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] when the underlying medium fails.
    fn barrier(&mut self) -> Result<(), NvmError> {
        Ok(())
    }

    /// Power died (write cut fired mid-recovery): discard unflushed
    /// journal records and turn every subsequent [`NvmBackend::barrier`]
    /// into a no-op — a dying platform flushes nothing more.
    fn suppress_flushes(&mut self) {}

    /// The backend's current freshness epoch: a monotonic counter bumped
    /// on every flushing barrier, compaction, and snapshot by durable
    /// backends. Volatile backends report 0 — within one process there is
    /// no restart for a rollback to hide behind.
    fn epoch(&self) -> u64 {
        0
    }

    /// What the freshness-anchor check concluded when this backend was
    /// opened. [`Freshness::Untracked`] for volatile or un-anchored
    /// backends.
    fn freshness(&self) -> Freshness {
        Freshness::Untracked
    }

    /// Explicitly advances the freshness epoch (snapshot capture point),
    /// making the bump durable. No-op for volatile backends.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Backend`] when the underlying medium fails.
    fn bump_epoch(&mut self) -> Result<(), NvmError> {
        Ok(())
    }

    /// Structurally damaged WAL frames discarded when the image was
    /// opened (torn tails truncated away) — the source feeding the
    /// `wal_rejected_total` telemetry counter.
    fn frames_rejected(&self) -> u64 {
        0
    }
}

/// The original in-memory backend: a sparse hash map, volatile across
/// process death. [`NvmBackend::barrier`] is a no-op — within one process
/// the map itself is the persistence model.
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    store: HashMap<u64, Block>,
    regs: BTreeMap<u8, Block>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NvmBackend for MemBackend {
    fn load(&self, phys: u64) -> Option<Block> {
        self.store.get(&phys).copied()
    }

    fn store(&mut self, phys: u64, block: Block) {
        self.store.insert(phys, block);
    }

    fn touched(&self) -> usize {
        self.store.len()
    }

    fn entries(&self) -> Vec<(u64, Block)> {
        let mut v: Vec<_> = self.store.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    fn store_reg(&mut self, idx: u8, block: Block) {
        self.regs.insert(idx, block);
    }

    fn reg(&self, idx: u8) -> Option<Block> {
        self.regs.get(&idx).copied()
    }

    fn regs(&self) -> Vec<(u8, Block)> {
        self.regs.iter().map(|(&i, &b)| (i, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrip() {
        let mut b = MemBackend::new();
        assert_eq!(b.load(7), None);
        b.store(7, Block::filled(0xAA));
        b.store(3, Block::filled(0xBB));
        assert_eq!(b.load(7), Some(Block::filled(0xAA)));
        assert_eq!(b.touched(), 2);
        let e = b.entries();
        assert_eq!(e[0].0, 3);
        assert_eq!(e[1].0, 7);
        b.barrier().unwrap();
        b.journal(9, Block::filled(1)); // no-op for the volatile backend
        assert_eq!(b.load(9), None);
    }

    #[test]
    fn mem_backend_registers() {
        let mut b = MemBackend::new();
        assert_eq!(b.reg(0), None);
        b.store_reg(2, Block::filled(2));
        b.store_reg(0, Block::filled(0));
        assert_eq!(b.reg(2), Some(Block::filled(2)));
        let r = b.regs();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"acb"));
    }
}
