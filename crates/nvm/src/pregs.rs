//! Persistent registers and the two-stage REDO commit (paper §2.7).

use crate::domain::WriteOp;

/// Capacity of the persistent register file in write entries.
///
/// A commit group (data block + counter block + affected tree nodes +
/// shadow-table blocks) must fit here; the deepest group any scheme in this
/// reproduction produces is bounded by the tree height plus a handful of
/// shadow writes, so 64 entries is generous.
pub const PREG_CAPACITY: usize = 64;

/// Where the two-stage commit was interrupted, as observed after a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPhase {
    /// No group was in flight (registers empty or already drained).
    Idle,
    /// A crash hit while the group was still being staged: `DONE_BIT` was
    /// not yet set, so the group never reached the persistent domain and is
    /// lost (the corresponding store never completed, which is acceptable).
    Staging,
    /// A crash hit after `DONE_BIT` was set but before every entry was
    /// copied into the WPQ: recovery must REDO the group.
    Draining,
}

/// On-chip NVM-backed registers implementing the atomic update of data and
/// security metadata.
///
/// Protocol (paper §2.7): all writes belonging to one logical memory-write
/// are first *staged* into the registers; then `DONE_BIT` is set; then the
/// entries are copied one by one into the WPQ; finally `DONE_BIT` is
/// cleared. If power fails
///
/// * before `DONE_BIT` is set → the whole group is lost (never persisted);
/// * after `DONE_BIT` is set → recovery re-inserts the surviving register
///   contents into the WPQ (REDO), making the group effectively atomic.
#[derive(Clone, Debug, Default)]
pub struct PersistentRegisters {
    entries: Vec<WriteOp>,
    done_bit: bool,
    drained: usize,
}

impl PersistentRegisters {
    /// Creates an empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of staged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no group is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `DONE_BIT` is currently set.
    pub fn done_bit(&self) -> bool {
        self.done_bit
    }

    /// Stages one write entry. Returns `false` (entry rejected) if the
    /// register file is full.
    ///
    /// # Panics
    ///
    /// Panics if called while `DONE_BIT` is set — the protocol forbids
    /// staging into a group that is already committing.
    pub fn stage(&mut self, op: WriteOp) -> bool {
        assert!(!self.done_bit, "cannot stage while a group is draining");
        if self.entries.len() == PREG_CAPACITY {
            return false;
        }
        self.entries.push(op);
        true
    }

    /// Sets `DONE_BIT`: the staged group is now in the persistent domain.
    pub fn set_done(&mut self) {
        self.done_bit = true;
        self.drained = 0;
    }

    /// Takes the next entry to copy into the WPQ, or `None` when the group
    /// has fully drained (in which case the registers clear themselves and
    /// `DONE_BIT` drops).
    pub fn next_to_drain(&mut self) -> Option<WriteOp> {
        if !self.done_bit {
            return None;
        }
        if self.drained < self.entries.len() {
            let op = self.entries[self.drained].clone();
            self.drained += 1;
            Some(op)
        } else {
            self.entries.clear();
            self.done_bit = false;
            self.drained = 0;
            None
        }
    }

    /// The staged entries, in staging order — snapshot support.
    pub fn entries(&self) -> &[WriteOp] {
        &self.entries
    }

    /// How many staged entries have already drained — snapshot support.
    pub fn drained(&self) -> usize {
        self.drained
    }

    /// Reconstructs a register file from snapshot parts. `drained` is
    /// clamped to the entry count; `done_bit` without entries is
    /// normalized back to an idle file.
    pub fn from_parts(entries: Vec<WriteOp>, done_bit: bool, drained: usize) -> Self {
        let mut entries = entries;
        entries.truncate(PREG_CAPACITY);
        let drained = drained.min(entries.len());
        let done_bit = done_bit && !entries.is_empty();
        PersistentRegisters {
            entries,
            done_bit,
            drained,
        }
    }

    /// What a crash at this instant would observe.
    pub fn phase(&self) -> CommitPhase {
        if self.done_bit {
            CommitPhase::Draining
        } else if self.entries.is_empty() {
            CommitPhase::Idle
        } else {
            CommitPhase::Staging
        }
    }

    /// Wipes the register file unconditionally — used by torn-write fault
    /// injection to model the group being lost after the tear (the REDO
    /// log is gone, so the partial persist becomes observable).
    pub(crate) fn torn_discard(&mut self) {
        self.entries.clear();
        self.done_bit = false;
        self.drained = 0;
    }

    /// Applies crash semantics: a staging group (no `DONE_BIT`) is lost;
    /// a draining group survives in the NVM-backed registers and is
    /// returned for REDO.
    pub fn survive_crash(&mut self) -> Vec<WriteOp> {
        match self.phase() {
            CommitPhase::Idle => Vec::new(),
            CommitPhase::Staging => {
                self.entries.clear();
                Vec::new()
            }
            CommitPhase::Draining => {
                // REDO the *whole* group: re-inserting already-drained
                // entries is idempotent because WPQ/device writes of the
                // same value are idempotent.
                let ops = std::mem::take(&mut self.entries);
                self.done_bit = false;
                self.drained = 0;
                ops
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, BlockAddr};

    fn op(i: u64) -> WriteOp {
        WriteOp::new(BlockAddr::new(i), Block::filled(i as u8))
    }

    #[test]
    fn full_protocol_roundtrip() {
        let mut regs = PersistentRegisters::new();
        assert_eq!(regs.phase(), CommitPhase::Idle);
        assert!(regs.stage(op(1)));
        assert!(regs.stage(op(2)));
        assert_eq!(regs.phase(), CommitPhase::Staging);
        regs.set_done();
        assert_eq!(regs.phase(), CommitPhase::Draining);
        assert_eq!(regs.next_to_drain(), Some(op(1)));
        assert_eq!(regs.next_to_drain(), Some(op(2)));
        assert_eq!(regs.next_to_drain(), None);
        assert_eq!(regs.phase(), CommitPhase::Idle);
        assert!(!regs.done_bit());
    }

    #[test]
    fn crash_while_staging_loses_group() {
        let mut regs = PersistentRegisters::new();
        regs.stage(op(1));
        let redo = regs.survive_crash();
        assert!(redo.is_empty());
        assert_eq!(regs.phase(), CommitPhase::Idle);
    }

    #[test]
    fn crash_while_draining_redoes_group() {
        let mut regs = PersistentRegisters::new();
        regs.stage(op(1));
        regs.stage(op(2));
        regs.set_done();
        let _ = regs.next_to_drain(); // one entry copied, then power fails
        let redo = regs.survive_crash();
        assert_eq!(redo, vec![op(1), op(2)]);
        assert_eq!(regs.phase(), CommitPhase::Idle);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut regs = PersistentRegisters::new();
        for i in 0..PREG_CAPACITY as u64 {
            assert!(regs.stage(op(i)));
        }
        assert!(!regs.stage(op(999)));
        assert_eq!(regs.len(), PREG_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "draining")]
    fn staging_during_drain_panics() {
        let mut regs = PersistentRegisters::new();
        regs.stage(op(1));
        regs.set_done();
        regs.stage(op(2));
    }
}
