//! Versioned, checksummed snapshots of the full persistent state.
//!
//! A [`Snapshot`] captures everything that survives power loss: device
//! block contents, the persistent register file, the persistent-register
//! commit machinery ([`crate::PersistentRegisters`]), and the serialized
//! bad-block [`crate::RemapTable`]. The byte format:
//!
//! ```text
//! "ANUBSNP1" (8) | version u32 LE | fnv1a64(body) u64 LE | body
//! body:
//!   freshness epoch u64
//!   entry count u64 | (phys u64 | 64 bytes)*
//!   reg count u32   | (idx u8   | 64 bytes)*
//!   pregs: done u8 | drained u64 | count u32 | (addr u64 | 64 bytes)*
//!   qtable block count u32 | (64 bytes)*
//! ```
//!
//! Malformed images surface as typed [`SnapshotError`]s — never a panic —
//! so a supervisor can feed them into its repair ladder.

use crate::block::Block;
use crate::domain::WriteOp;
use crate::{backend::fnv1a64, BlockAddr, BLOCK_BYTES};
use core::fmt;

const MAGIC: &[u8; 8] = b"ANUBSNP1";
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 20;

/// Why a snapshot image failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The image does not start with the snapshot magic.
    BadMagic,
    /// The image's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The image ends before its sections do.
    Truncated,
    /// The body checksum does not match the header.
    ChecksumMismatch,
    /// The embedded quarantine-table blocks failed to parse.
    BadQuarantineTable,
    /// The snapshot's freshness epoch is behind the epoch the target
    /// domain already reached: restoring it would roll committed state
    /// back to a stale (if internally consistent) version.
    StaleEpoch {
        /// Epoch the snapshot was captured at.
        snapshot_epoch: u64,
        /// Epoch the target domain's backend has already sealed.
        current_epoch: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot image has bad magic"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot image is truncated"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot body checksum mismatch (bit corruption)")
            }
            SnapshotError::BadQuarantineTable => {
                write!(f, "snapshot quarantine table is malformed")
            }
            SnapshotError::StaleEpoch {
                snapshot_epoch,
                current_epoch,
            } => {
                write!(
                    f,
                    "stale snapshot: captured at epoch {snapshot_epoch}, \
                     domain already at epoch {current_epoch}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A point-in-time image of the entire persistent domain state.
///
/// Produced by [`crate::PersistenceDomain::snapshot`], serialized with
/// [`Snapshot::to_bytes`], and restored with [`Snapshot::from_bytes`] +
/// [`crate::PersistenceDomain::apply_snapshot`] in a fresh process.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Freshness epoch at capture (0 for volatile backends). A restore
    /// path comparing this against the sealed anchor can refuse a
    /// snapshot older than the state it would replace.
    pub epoch: u64,
    /// Device block contents, sorted by physical index.
    pub entries: Vec<(u64, Block)>,
    /// Persistent register file images, sorted by index.
    pub regs: Vec<(u8, Block)>,
    /// Staged entries of the persistent-register commit machinery.
    pub pregs_entries: Vec<WriteOp>,
    /// Whether `DONE_BIT` was set when the snapshot was taken.
    pub pregs_done: bool,
    /// How many staged entries had already drained.
    pub pregs_drained: u64,
    /// Serialized bad-block remap table (empty = no quarantine state).
    pub qtable: Vec<Block>,
}

impl Snapshot {
    /// Serializes the snapshot with header and checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.epoch.to_le_bytes());
        body.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (phys, block) in &self.entries {
            body.extend_from_slice(&phys.to_le_bytes());
            body.extend_from_slice(block.as_bytes());
        }
        body.extend_from_slice(&(self.regs.len() as u32).to_le_bytes());
        for (idx, block) in &self.regs {
            body.push(*idx);
            body.extend_from_slice(block.as_bytes());
        }
        body.push(self.pregs_done as u8);
        body.extend_from_slice(&self.pregs_drained.to_le_bytes());
        body.extend_from_slice(&(self.pregs_entries.len() as u32).to_le_bytes());
        for op in &self.pregs_entries {
            body.extend_from_slice(&op.addr.index().to_le_bytes());
            body.extend_from_slice(op.block.as_bytes());
        }
        body.extend_from_slice(&(self.qtable.len() as u32).to_le_bytes());
        for block in &self.qtable {
            body.extend_from_slice(block.as_bytes());
        }

        let mut out = Vec::with_capacity(HEADER_BYTES + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses and validates a serialized snapshot.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] for any malformation: bad magic,
    /// unknown version, truncation, or checksum mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_BYTES {
            return if bytes.len() >= 8 && &bytes[..8] != MAGIC {
                Err(SnapshotError::BadMagic)
            } else {
                Err(SnapshotError::Truncated)
            };
        }
        if &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
        let body = &bytes[HEADER_BYTES..];
        if fnv1a64(body) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = Reader { body, pos: 0 };
        let epoch = r.u64()?;
        let entry_count = r.u64()?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            let phys = r.u64()?;
            entries.push((phys, r.block()?));
        }
        let reg_count = r.u32()?;
        let mut regs = Vec::new();
        for _ in 0..reg_count {
            let idx = r.u8()?;
            regs.push((idx, r.block()?));
        }
        let pregs_done = r.u8()? != 0;
        let pregs_drained = r.u64()?;
        let preg_count = r.u32()?;
        let mut pregs_entries = Vec::new();
        for _ in 0..preg_count {
            let addr = r.u64()?;
            pregs_entries.push(WriteOp::new(BlockAddr::new(addr), r.block()?));
        }
        let qtable_count = r.u32()?;
        let mut qtable = Vec::new();
        for _ in 0..qtable_count {
            qtable.push(r.block()?);
        }

        Ok(Snapshot {
            epoch,
            entries,
            regs,
            pregs_entries,
            pregs_done,
            pregs_drained,
            qtable,
        })
    }
}

struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(SnapshotError::Truncated)?;
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn block(&mut self) -> Result<Block, SnapshotError> {
        Ok(Block::from_bytes(
            self.take(BLOCK_BYTES)?.try_into().expect("64-byte slice"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            epoch: 41,
            entries: vec![(3, Block::filled(0x33)), (9, Block::filled(0x99))],
            regs: vec![(0, Block::filled(1)), (7, Block::filled(7))],
            pregs_entries: vec![WriteOp::new(BlockAddr::new(12), Block::filled(0xAB))],
            pregs_done: true,
            pregs_drained: 1,
            qtable: vec![Block::filled(0x51)],
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot::default();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 0xEE;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn truncation_at_every_length_is_typed_never_a_panic() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn body_bit_flip_is_checksum_mismatch() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch)
        );
    }
}
