//! Property tests for the persistence domain: commit-group atomicity
//! under arbitrary crash points.

use anubis_nvm::{Block, BlockAddr, PersistenceDomain, WriteOp};
use proptest::prelude::*;

fn block_strategy() -> impl Strategy<Value = Block> {
    prop::array::uniform8(any::<u64>()).prop_map(Block::from_words)
}

/// One scripted group of writes: (addresses, fill values).
fn group_strategy() -> impl Strategy<Value = Vec<(u64, Block)>> {
    prop::collection::vec((0u64..64, block_strategy()), 1..6)
}

proptest! {
    /// Whatever sequence of groups commits, a crash+power-up leaves the
    /// device holding exactly the last committed value of every address —
    /// never a torn mixture.
    #[test]
    fn committed_groups_are_atomic(groups in prop::collection::vec(group_strategy(), 1..20)) {
        let mut domain = PersistenceDomain::new(1 << 20);
        let mut model = std::collections::HashMap::new();
        for group in &groups {
            let ops: Vec<WriteOp> =
                group.iter().map(|(a, b)| WriteOp::new(BlockAddr::new(*a), *b)).collect();
            domain.commit_group(ops).expect("groups are small");
            for (a, b) in group {
                model.insert(*a, *b);
            }
        }
        domain.power_fail();
        domain.power_up();
        for (a, b) in &model {
            prop_assert_eq!(domain.device().peek(BlockAddr::new(*a)), *b);
        }
    }

    /// A group lost while staging (before DONE_BIT) leaves no trace; a
    /// group interrupted while draining is REDOne completely.
    #[test]
    fn in_flight_groups_all_or_nothing(
        group in group_strategy(),
        drained_before_crash in 0usize..8,
        set_done in any::<bool>(),
    ) {
        let mut domain = PersistenceDomain::new(1 << 20);
        for (a, b) in &group {
            domain.pregs_mut().stage(WriteOp::new(BlockAddr::new(*a), *b));
        }
        if set_done {
            domain.pregs_mut().set_done();
            for _ in 0..drained_before_crash.min(group.len()) {
                if let Some(op) = domain.pregs_mut().next_to_drain() {
                    // Simulate partial WPQ insertion by writing directly.
                    domain.device_mut().write(op.addr, op.block);
                }
            }
        }
        domain.power_fail();
        domain.power_up();
        // All-or-nothing: either every address holds its group value, or
        // (staging crash) none were REDOne — partially drained groups must
        // complete.
        let mut last = std::collections::HashMap::new();
        for (a, b) in &group {
            last.insert(*a, *b);
        }
        if set_done {
            for (a, b) in &last {
                prop_assert_eq!(domain.device().peek(BlockAddr::new(*a)), *b);
            }
        }
        // If !set_done, addresses may be zero or partially written by the
        // simulated pre-drain — but DONE_BIT was never set, so the REDO
        // log itself must be empty:
        prop_assert!(domain.pregs_mut().is_empty());
    }

    /// WPQ coalescing never loses the newest value.
    #[test]
    fn wpq_read_after_write_consistency(ops in prop::collection::vec((0u64..16, block_strategy()), 1..40)) {
        let mut domain = PersistenceDomain::new(1 << 20);
        let mut model = std::collections::HashMap::new();
        for (a, b) in &ops {
            domain.commit_group([WriteOp::new(BlockAddr::new(*a), *b)]).unwrap();
            model.insert(*a, *b);
            // Read through the WPQ without draining.
            prop_assert_eq!(domain.read(BlockAddr::new(*a)).unwrap(), *b);
        }
        for (a, b) in &model {
            prop_assert_eq!(domain.read(BlockAddr::new(*a)).unwrap(), *b);
        }
    }
}

proptest! {
    /// Region allocation is a partition: every block belongs to at most
    /// one region and lookups agree with containment.
    #[test]
    fn regions_partition_address_space(sizes in prop::collection::vec(1u64..100, 1..10)) {
        use anubis_nvm::RegionAllocator;
        let names: &[&'static str] = &["a","b","c","d","e","f","g","h","i","j"];
        let mut alloc = RegionAllocator::new();
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| alloc.alloc(names[i], len))
            .collect();
        let total = alloc.total_blocks();
        prop_assert_eq!(total, sizes.iter().sum::<u64>());
        for probe in 0..total {
            let addr = BlockAddr::new(probe);
            let containing: Vec<_> = regions.iter().filter(|r| r.contains(addr)).collect();
            prop_assert_eq!(containing.len(), 1, "block {} regions", probe);
            prop_assert_eq!(
                alloc.region_of(addr).map(|r| r.name()),
                Some(containing[0].name())
            );
        }
        prop_assert!(alloc.region_of(BlockAddr::new(total)).is_none());
    }

    /// Block word accessors are a bijection with the byte view.
    #[test]
    fn block_words_and_bytes_agree(words in prop::array::uniform8(any::<u64>())) {
        let b = Block::from_words(words);
        prop_assert_eq!(b.words(), words);
        let b2 = Block::from_bytes(*b.as_bytes());
        prop_assert_eq!(b2, b);
        // XOR identity and self-inverse.
        let k = Block::from_words(words.map(|w| w.rotate_left(13)));
        prop_assert_eq!(b.xored(&k).xored(&k), b);
    }
}
