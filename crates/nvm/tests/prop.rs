//! Randomized property tests for the persistence domain: commit-group
//! atomicity under arbitrary crash points, and WPQ/ADR semantics.
//!
//! Driven by the in-tree [`SplitMix64`] generator (the workspace builds
//! offline, so no external property-testing framework): each property is
//! checked over many independently seeded random cases, and every failure
//! message carries the seed for exact reproduction.

use anubis_nvm::{
    Block, BlockAddr, NvmDevice, NvmError, PersistenceDomain, SplitMix64, Wpq, WriteOp,
};
use std::collections::HashMap;

fn rand_block(rng: &mut SplitMix64) -> Block {
    Block::from_words(core::array::from_fn(|_| rng.next_u64()))
}

/// One scripted group of writes: (addresses, fill values).
fn rand_group(rng: &mut SplitMix64) -> Vec<(u64, Block)> {
    let len = rng.gen_range(1..6) as usize;
    (0..len)
        .map(|_| (rng.gen_range(0..64), rand_block(rng)))
        .collect()
}

/// Whatever sequence of groups commits, a crash+power-up leaves the
/// device holding exactly the last committed value of every address —
/// never a torn mixture.
#[test]
fn committed_groups_are_atomic() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let mut domain = PersistenceDomain::new(1 << 20);
        let mut model = HashMap::new();
        let n_groups = rng.gen_range(1..20) as usize;
        for _ in 0..n_groups {
            let group = rand_group(&mut rng);
            let ops: Vec<WriteOp> = group
                .iter()
                .map(|(a, b)| WriteOp::new(BlockAddr::new(*a), *b))
                .collect();
            domain.commit_group(ops).expect("groups are small");
            for (a, b) in group {
                model.insert(a, b);
            }
        }
        domain.power_fail();
        domain.power_up();
        for (a, b) in &model {
            assert_eq!(
                domain.device().peek(BlockAddr::new(*a)),
                *b,
                "seed {seed} addr {a}"
            );
        }
    }
}

/// A group lost while staging (before DONE_BIT) leaves no trace; a
/// group interrupted while draining is REDOne completely.
#[test]
fn in_flight_groups_all_or_nothing() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed ^ 0xD00D);
        let group = rand_group(&mut rng);
        let drained_before_crash = rng.gen_range(0..8) as usize;
        let set_done = rng.gen_bool(0.5);

        let mut domain = PersistenceDomain::new(1 << 20);
        for (a, b) in &group {
            domain
                .pregs_mut()
                .stage(WriteOp::new(BlockAddr::new(*a), *b));
        }
        if set_done {
            domain.pregs_mut().set_done();
            for _ in 0..drained_before_crash.min(group.len()) {
                if let Some(op) = domain.pregs_mut().next_to_drain() {
                    // Simulate partial WPQ insertion by writing directly.
                    domain.device_mut().write(op.addr, op.block);
                }
            }
        }
        domain.power_fail();
        domain.power_up();
        // All-or-nothing: either every address holds its group value, or
        // (staging crash) none were REDOne — partially drained groups must
        // complete.
        let mut last = HashMap::new();
        for (a, b) in &group {
            last.insert(*a, *b);
        }
        if set_done {
            for (a, b) in &last {
                assert_eq!(
                    domain.device().peek(BlockAddr::new(*a)),
                    *b,
                    "seed {seed} addr {a}"
                );
            }
        }
        // If !set_done, addresses may be zero or partially written by the
        // simulated pre-drain — but DONE_BIT was never set, so the REDO
        // log itself must be empty:
        assert!(domain.pregs_mut().is_empty(), "seed {seed}");
    }
}

/// WPQ coalescing never loses the newest value.
#[test]
fn wpq_read_after_write_consistency() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        let mut domain = PersistenceDomain::new(1 << 20);
        let mut model = HashMap::new();
        let n_ops = rng.gen_range(1..40) as usize;
        for _ in 0..n_ops {
            let a = rng.gen_range(0..16);
            let b = rand_block(&mut rng);
            domain
                .commit_group([WriteOp::new(BlockAddr::new(a), b)])
                .unwrap();
            model.insert(a, b);
            // Read through the WPQ without draining.
            assert_eq!(domain.read(BlockAddr::new(a)).unwrap(), b, "seed {seed}");
        }
        for (a, b) in &model {
            assert_eq!(
                domain.read(BlockAddr::new(*a)).unwrap(),
                *b,
                "seed {seed} addr {a}"
            );
        }
    }
}

/// The ADR guarantee under randomized op sequences: every write accepted
/// into the WPQ before `power_fail()` reaches the device afterwards, the
/// bounded insert path refuses entries beyond capacity (queue occupancy
/// never exceeds it), and pending lookups always serve the newest value.
#[test]
fn wpq_adr_guarantee_under_random_sequences() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed ^ 0xADF0);
        let capacity = rng.gen_range(1..9) as usize;
        let mut dev = NvmDevice::new(1 << 20);
        let mut wpq = Wpq::new(capacity);
        // What the persistent domain must hold after ADR: every accepted
        // write's newest value (whether still queued or force-drained).
        let mut accepted: HashMap<u64, Block> = HashMap::new();
        let mut refused = 0u32;
        let n_ops = rng.gen_range(10..120) as usize;
        for _ in 0..n_ops {
            let addr = rng.gen_range(0..24);
            let block = rand_block(&mut rng);
            let op = WriteOp::new(BlockAddr::new(addr), block);
            if rng.gen_bool(0.5) {
                wpq.insert(op, &mut dev);
                accepted.insert(addr, block);
            } else {
                match wpq.try_insert(op) {
                    Ok(()) => {
                        accepted.insert(addr, block);
                    }
                    Err(NvmError::WpqFull { capacity: c }) => {
                        assert_eq!(c, capacity, "seed {seed}");
                        assert_eq!(wpq.len(), capacity, "refusal only when full, seed {seed}");
                        refused += 1;
                    }
                    Err(e) => panic!("unexpected error {e} (seed {seed})"),
                }
            }
            assert!(
                wpq.len() <= capacity,
                "occupancy bound violated, seed {seed}"
            );
            if let Some(b) = accepted.get(&addr) {
                let visible = wpq
                    .pending(BlockAddr::new(addr))
                    .unwrap_or_else(|| dev.peek(BlockAddr::new(addr)));
                assert_eq!(visible, *b, "newest value lost, seed {seed}");
            }
        }
        // Power failure: ADR flushes the queue.
        wpq.flush(&mut dev);
        assert!(wpq.is_empty(), "seed {seed}");
        for (a, b) in &accepted {
            assert_eq!(
                dev.peek(BlockAddr::new(*a)),
                *b,
                "accepted write lost across power_fail, seed {seed} addr {a}"
            );
        }
        // Sanity: small queues under 120 ops must actually exercise refusal
        // at least once in aggregate (guards against a vacuous test).
        if capacity == 1 && n_ops > 40 {
            assert!(refused > 0, "refusal path never exercised, seed {seed}");
        }
    }
}

/// Entries accepted into the *persistence domain* before `power_fail()`
/// are always on the device afterwards — the end-to-end ADR property.
#[test]
fn domain_writes_survive_power_fail_without_power_up() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed ^ 0x5EED);
        let mut domain = PersistenceDomain::new(1 << 20);
        let mut model = HashMap::new();
        for _ in 0..rng.gen_range(1..60) {
            let a = rng.gen_range(0..48);
            let b = rand_block(&mut rng);
            domain
                .commit_group([WriteOp::new(BlockAddr::new(a), b)])
                .unwrap();
            model.insert(a, b);
        }
        domain.power_fail();
        // No power_up: ADR alone must have persisted everything acked.
        for (a, b) in &model {
            assert_eq!(
                domain.device().peek(BlockAddr::new(*a)),
                *b,
                "seed {seed} addr {a}"
            );
        }
    }
}

/// Region allocation is a partition: every block belongs to at most
/// one region and lookups agree with containment.
#[test]
fn regions_partition_address_space() {
    use anubis_nvm::RegionAllocator;
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(seed ^ 0x9A9A);
        let names: &[&'static str] = &["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        let n_regions = rng.gen_range(1..10) as usize;
        let sizes: Vec<u64> = (0..n_regions).map(|_| rng.gen_range(1..100)).collect();
        let mut alloc = RegionAllocator::new();
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| alloc.alloc(names[i], len))
            .collect();
        let total = alloc.total_blocks();
        assert_eq!(total, sizes.iter().sum::<u64>());
        for probe in 0..total {
            let addr = BlockAddr::new(probe);
            let containing: Vec<_> = regions.iter().filter(|r| r.contains(addr)).collect();
            assert_eq!(containing.len(), 1, "block {probe} regions, seed {seed}");
            assert_eq!(
                alloc.region_of(addr).map(|r| r.name()),
                Some(containing[0].name()),
                "seed {seed}"
            );
        }
        assert!(alloc.region_of(BlockAddr::new(total)).is_none());
    }
}

/// Block word accessors are a bijection with the byte view.
#[test]
fn block_words_and_bytes_agree() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0xB10C);
        let words: [u64; 8] = core::array::from_fn(|_| rng.next_u64());
        let b = Block::from_words(words);
        assert_eq!(b.words(), words);
        let b2 = Block::from_bytes(*b.as_bytes());
        assert_eq!(b2, b);
        // XOR identity and self-inverse.
        let k = Block::from_words(words.map(|w| w.rotate_left(13)));
        assert_eq!(b.xored(&k).xored(&k), b);
    }
}
