//! Dependency-free structured tracing and metrics for the Anubis
//! reproduction.
//!
//! The paper's headline claims are quantitative (recovery time, runtime
//! overhead), so the reproduction needs more than end-of-run aggregates:
//! this crate provides a [`Registry`] of counters, gauges and histograms
//! that can be snapshotted *mid-run* at epoch boundaries, plus phase
//! [`SpanGuard`]s with monotonic timestamps and lane attribution for the
//! recovery engine.
//!
//! # Cost model
//!
//! Everything is reached through a cheap, cloneable [`Telemetry`] handle.
//! A disabled handle ([`Telemetry::off`], the default for controllers)
//! costs one branch on an `Option`; the process-wide [`Telemetry::global`]
//! handle additionally costs one relaxed atomic load while the global
//! registry stays disabled. Building with `--no-default-features`
//! (dropping the `enabled` feature) turns every recording call into a
//! compile-time `None` that the optimizer folds away entirely — the
//! zero-cost guarantee documented in DESIGN.md §8.
//!
//! # Determinism
//!
//! Counter, gauge and histogram values written by deterministic code are
//! themselves deterministic (lanes merge through commutative updates into
//! ordered maps). Span *durations* and snapshot timestamps come from the
//! host monotonic clock and are explicitly excluded from determinism
//! contracts; span *counts per phase name* are deterministic.
//!
//! # Export formats
//!
//! * [`Snapshot::to_jsonl`] — one JSON object per line
//!   (`{"type":"snapshot",...}`), the `TELEMETRY_*.jsonl` format emitted
//!   by the bench binaries.
//! * [`Registry::spans_jsonl`] — one `{"type":"span",...}` line per
//!   completed span.
//! * [`Registry::prometheus`] — Prometheus text exposition of the current
//!   counter/gauge/histogram state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Environment variable that enables the global registry at first use.
pub const TELEMETRY_ENV: &str = "ANUBIS_TELEMETRY";

/// Number of power-of-two histogram buckets (covers `0..2^31` ns).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket power-of-two histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// `buckets[i]` counts observations with `value < 2^i` (first
    /// matching bucket; the last bucket is a catch-all).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = (64 - (v as u64).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile at bucket resolution: the upper bound of
    /// the power-of-two bucket holding the rank-`⌈p·count⌉` observation
    /// (see [`percentile_of_sorted`] for the rank convention). Bucket
    /// `i` reports `2^i − 1`; the catch-all last bucket reports the
    /// largest observation seen. Returns 0 when empty.
    ///
    /// This is deliberately coarse (factor-of-two resolution) — exact
    /// tails come from [`percentile_of_sorted`] over the raw latency
    /// stream; the histogram variant exists so snapshots exported long
    /// after the stream is gone still carry tail shape.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 {
                    0
                } else if i == HISTOGRAM_BUCKETS - 1 {
                    self.max.max(0.0) as u64
                } else {
                    (1u64 << i) - 1
                };
            }
        }
        self.max.max(0.0) as u64
    }
}

/// Nearest-rank percentile of an already **sorted ascending** slice.
///
/// The convention, used everywhere in this repo (chaos drills, the
/// serving bench, the discrete-event latency engine): the `p`-th
/// percentile is the value at 1-based rank `⌈p · n⌉`, clamped to
/// `[1, n]` — i.e. the smallest element such that at least `p · n`
/// observations are ≤ it. This always returns an observed value (no
/// interpolation), `p = 0` returns the minimum, `p = 1` the maximum,
/// and an empty slice returns 0.
pub fn percentile_of_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// One completed span: a named phase with monotonic timestamps and
/// optional lane attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase name (e.g. `"recovery.osiris_probe"`).
    pub name: &'static str,
    /// Free-form label, typically the scheme name.
    pub label: String,
    /// Lane index for per-lane spans (`None` for whole-phase spans).
    pub lane: Option<usize>,
    /// Start offset from the registry's creation, in nanoseconds
    /// (monotonic, **not** deterministic).
    pub start_ns: u64,
    /// Duration in nanoseconds (monotonic, **not** deterministic).
    pub dur_ns: u64,
    /// Work items the span covered (0 when not set).
    pub items: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, f64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    spans: Vec<SpanRecord>,
    snapshots: u64,
}

/// A metrics + tracing registry. Thread-safe; usually reached through a
/// [`Telemetry`] handle.
pub struct Registry {
    enabled: AtomicBool,
    anchor: Instant,
    inner: Mutex<Inner>,
}

impl core::fmt::Debug for Registry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, **enabled** registry (creating one implies intent to
    /// record — tests and the bench harness use private registries).
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            anchor: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether recording calls currently do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned registry mutex means a panic mid-record; telemetry
        // must never amplify that into an abort of the recovery path.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `n` to the counter `name{label}` (event counting).
    pub fn incr(&self, name: &'static str, label: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        *self
            .lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert(0) += n;
    }

    /// Publishes an externally-accumulated monotone total: the stored
    /// value only moves up (idempotent re-publication at epoch
    /// boundaries).
    pub fn counter_set(&self, name: &'static str, label: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let slot = inner
            .counters
            .entry(name.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Sets the gauge `name{label}`.
    pub fn gauge_set(&self, name: &'static str, label: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .insert(label.to_string(), value);
    }

    /// Records one observation into the histogram `name{label}`.
    pub fn observe(&self, name: &'static str, label: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .entry(label.to_string())
            .or_default()
            .observe(value);
    }

    /// Opens a span; it records itself when dropped. Disabled registries
    /// return an inert guard.
    pub fn span(&self, name: &'static str, label: &str) -> SpanGuard<'_> {
        SpanGuard {
            reg: self.is_enabled().then_some(self),
            name,
            label: label.to_string(),
            lane: None,
            items: 0,
            start: Instant::now(),
        }
    }

    /// Number of completed spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.lock().spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// Takes a point-in-time snapshot of every counter, gauge and
    /// histogram, tagging it with a monotonically increasing sequence
    /// number.
    pub fn snapshot(&self) -> Snapshot {
        let mut inner = self.lock();
        inner.snapshots += 1;
        Snapshot {
            seq: inner.snapshots,
            at_ns: self.anchor.elapsed().as_nanos() as u64,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans_completed: inner.spans.len() as u64,
        }
    }

    /// Completed spans, sorted by `(name, label, lane)` so the export
    /// order is stable regardless of lane interleaving.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.lock().spans.clone();
        spans.sort_by(|a, b| (a.name, &a.label, a.lane).cmp(&(b.name, &b.label, b.lane)));
        spans
    }

    /// Renders every completed span as one `{"type":"span",...}` JSON
    /// line.
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"label\":\"{}\",\"lane\":{},\
                 \"start_ns\":{},\"dur_ns\":{},\"items\":{}}}\n",
                escape(s.name),
                escape(&s.label),
                s.lane.map_or("null".to_string(), |l| l.to_string()),
                s.start_ns,
                s.dur_ns,
                s.items,
            ));
        }
        out
    }

    /// Renders the current state in the Prometheus text exposition
    /// format (counters, gauges, and histogram `_count`/`_sum`/`le`
    /// buckets under an `anubis_` prefix).
    pub fn prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, by_label) in &inner.counters {
            out.push_str(&format!("# TYPE anubis_{name} counter\n"));
            for (label, v) in by_label {
                out.push_str(&format!("anubis_{name}{{scheme=\"{label}\"}} {v}\n"));
            }
        }
        for (name, by_label) in &inner.gauges {
            out.push_str(&format!("# TYPE anubis_{name} gauge\n"));
            for (label, v) in by_label {
                out.push_str(&format!("anubis_{name}{{scheme=\"{label}\"}} {v}\n"));
            }
        }
        for (name, by_label) in &inner.histograms {
            out.push_str(&format!("# TYPE anubis_{name} histogram\n"));
            for (label, h) in by_label {
                let mut cum = 0u64;
                for (i, b) in h.buckets.iter().enumerate() {
                    cum += b;
                    if *b > 0 || i == HISTOGRAM_BUCKETS - 1 {
                        let le = if i == HISTOGRAM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            (1u64 << i).to_string()
                        };
                        out.push_str(&format!(
                            "anubis_{name}_bucket{{scheme=\"{label}\",le=\"{le}\"}} {cum}\n"
                        ));
                    }
                }
                out.push_str(&format!(
                    "anubis_{name}_sum{{scheme=\"{label}\"}} {}\n",
                    h.sum
                ));
                out.push_str(&format!(
                    "anubis_{name}_count{{scheme=\"{label}\"}} {}\n",
                    h.count
                ));
            }
        }
        out
    }

    /// The process-wide registry. Starts **disabled** unless
    /// [`TELEMETRY_ENV`]`=1`; controllers default to publishing here, so
    /// enabling it lights up telemetry without any plumbing.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let reg = Registry::new();
            let on = std::env::var(TELEMETRY_ENV)
                .map(|v| v == "1")
                .unwrap_or(false);
            reg.set_enabled(on);
            reg
        })
    }
}

/// An open phase span; records itself into the registry on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard<'a> {
    reg: Option<&'a Registry>,
    name: &'static str,
    label: String,
    lane: Option<usize>,
    items: u64,
    start: Instant,
}

impl SpanGuard<'_> {
    /// Attributes the span to a recovery/replay lane.
    pub fn lane(mut self, lane: usize) -> Self {
        self.lane = Some(lane);
        self
    }

    /// Records how many work items the span covered.
    pub fn items(mut self, n: u64) -> Self {
        self.items = n;
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(reg) = self.reg else { return };
        let record = SpanRecord {
            name: self.name,
            label: std::mem::take(&mut self.label),
            lane: self.lane,
            start_ns: (self.start - reg.anchor).as_nanos() as u64,
            dur_ns: self.start.elapsed().as_nanos() as u64,
            items: self.items,
        };
        reg.lock().spans.push(record);
    }
}

/// A point-in-time copy of the registry's metric state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// 1-based snapshot sequence number within the registry.
    pub seq: u64,
    /// Monotonic offset from registry creation (ns; **not**
    /// deterministic).
    pub at_ns: u64,
    /// Counter values: `name → label → value`.
    pub counters: BTreeMap<String, BTreeMap<String, u64>>,
    /// Gauge values: `name → label → value`.
    pub gauges: BTreeMap<String, BTreeMap<String, f64>>,
    /// Histogram state: `name → label → histogram`.
    pub histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    /// Number of spans completed at snapshot time.
    pub spans_completed: u64,
}

impl Snapshot {
    /// Reads one counter (0 when absent).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(name)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Reads one gauge (`None` when absent).
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges.get(name).and_then(|m| m.get(label)).copied()
    }

    /// The deterministic portion of the snapshot — everything except the
    /// sequence number, timestamp and span tally. Two runs of the same
    /// deterministic workload must agree on this value.
    pub fn deterministic_view(&self) -> (&BTreeMap<String, BTreeMap<String, u64>>, Vec<String>) {
        let gauge_keys = self
            .gauges
            .iter()
            .flat_map(|(n, m)| m.keys().map(move |l| format!("{n}{{{l}}}")))
            .collect();
        (&self.counters, gauge_keys)
    }

    /// Renders the snapshot as one `{"type":"snapshot",...}` JSON line.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"snapshot\",\"seq\":{},\"at_ns\":{},\"spans_completed\":{}",
            self.seq, self.at_ns, self.spans_completed
        );
        out.push_str(",\"counters\":{");
        push_nested(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_nested(&mut out, &self.gauges, |out, v| push_f64(out, *v));
        out.push_str("},\"histograms\":{");
        push_nested(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!("{{\"count\":{},\"sum\":", h.count));
            push_f64(out, h.sum);
            out.push_str(",\"min\":");
            push_f64(out, h.min);
            out.push_str(",\"max\":");
            push_f64(out, h.max);
            out.push_str(",\"mean\":");
            push_f64(out, h.mean());
            out.push_str(&format!(
                ",\"p50\":{},\"p95\":{},\"p99\":{}",
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99)
            ));
            out.push('}');
        });
        out.push_str("}}\n");
        out
    }
}

fn push_nested<V>(
    out: &mut String,
    map: &BTreeMap<String, BTreeMap<String, V>>,
    mut render: impl FnMut(&mut String, &V),
) {
    let mut first_name = true;
    for (name, by_label) in map {
        if !first_name {
            out.push(',');
        }
        first_name = false;
        out.push_str(&format!("\"{}\":{{", escape(name)));
        let mut first_label = true;
        for (label, v) in by_label {
            if !first_label {
                out.push(',');
            }
            first_label = false;
            out.push_str(&format!("\"{}\":", escape(label)));
            render(out, v);
        }
        out.push('}');
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A cheap, cloneable handle to a registry — the only telemetry type
/// threaded through the controllers, the lane pool and the simulator.
///
/// The handle is the compile-out point: without the `enabled` cargo
/// feature, [`Telemetry::registry`] is a compile-time `None` and every
/// recording call behind it folds away.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    sink: Sink,
}

#[derive(Clone, Debug, Default)]
enum Sink {
    /// No registry at all — recording is a single `Option` branch.
    #[default]
    Off,
    /// The process-wide [`Registry::global`] (disabled unless opted in).
    Global,
    /// A privately owned registry (tests, bench harness).
    Own(Arc<Registry>),
}

impl Telemetry {
    /// A handle that records nothing.
    pub fn off() -> Self {
        Telemetry { sink: Sink::Off }
    }

    /// A handle to the process-wide registry (see [`Registry::global`]).
    pub fn global() -> Self {
        Telemetry { sink: Sink::Global }
    }

    /// A handle to a private registry.
    pub fn with(reg: Arc<Registry>) -> Self {
        Telemetry {
            sink: Sink::Own(reg),
        }
    }

    /// A fresh private registry plus a handle to it.
    pub fn private() -> (Arc<Registry>, Self) {
        let reg = Arc::new(Registry::new());
        (reg.clone(), Telemetry::with(reg))
    }

    /// The registry behind the handle, if any — `None` when the handle is
    /// off, the registry is disabled, or the `enabled` feature is
    /// compiled out.
    #[inline]
    pub fn registry(&self) -> Option<&Registry> {
        if cfg!(not(feature = "enabled")) {
            return None;
        }
        let reg = match &self.sink {
            Sink::Off => return None,
            Sink::Global => Registry::global(),
            Sink::Own(reg) => reg.as_ref(),
        };
        reg.is_enabled().then_some(reg)
    }

    /// Whether recording calls currently reach a live registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry().is_some()
    }

    /// See [`Registry::incr`].
    #[inline]
    pub fn incr(&self, name: &'static str, label: &str, n: u64) {
        if let Some(reg) = self.registry() {
            reg.incr(name, label, n);
        }
    }

    /// See [`Registry::counter_set`].
    #[inline]
    pub fn counter_set(&self, name: &'static str, label: &str, value: u64) {
        if let Some(reg) = self.registry() {
            reg.counter_set(name, label, value);
        }
    }

    /// See [`Registry::gauge_set`].
    #[inline]
    pub fn gauge_set(&self, name: &'static str, label: &str, value: f64) {
        if let Some(reg) = self.registry() {
            reg.gauge_set(name, label, value);
        }
    }

    /// See [`Registry::observe`].
    #[inline]
    pub fn observe(&self, name: &'static str, label: &str, value: f64) {
        if let Some(reg) = self.registry() {
            reg.observe(name, label, value);
        }
    }

    /// Opens a span (inert when the handle is off/disabled).
    #[inline]
    pub fn span(&self, name: &'static str, label: &str) -> SpanGuard<'_> {
        match self.registry() {
            Some(reg) => reg.span(name, label),
            None => SpanGuard {
                reg: None,
                name,
                label: String::new(),
                lane: None,
                items: 0,
                start: Instant::now(),
            },
        }
    }

    /// Takes a snapshot (`None` when the handle is off/disabled).
    pub fn take_snapshot(&self) -> Option<Snapshot> {
        self.registry().map(Registry::snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        reg.incr("events", "osiris", 2);
        reg.incr("events", "osiris", 3);
        reg.counter_set("total", "asit", 10);
        reg.counter_set("total", "asit", 7); // monotone: must not regress
        reg.gauge_set("occupancy", "asit", 1.5);
        let s = reg.snapshot();
        assert_eq!(s.counter("events", "osiris"), 5);
        assert_eq!(s.counter("total", "asit"), 10);
        assert_eq!(s.gauge("occupancy", "asit"), Some(1.5));
        assert_eq!(s.counter("missing", "x"), 0);
        assert_eq!(s.seq, 1);
        assert_eq!(reg.snapshot().seq, 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        reg.incr("events", "x", 1);
        reg.gauge_set("g", "x", 1.0);
        reg.observe("h", "x", 1.0);
        drop(reg.span("phase", "x"));
        reg.set_enabled(true);
        let s = reg.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert_eq!(s.spans_completed, 0);
    }

    #[test]
    fn off_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        t.incr("events", "x", 1);
        drop(t.span("phase", "x"));
        assert!(t.take_snapshot().is_none());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 104.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.mean(), 26.0);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
        // 0 → bucket 0, 1 → bucket 1, 3 → bucket 2, 100 → bucket 7.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
    }

    #[test]
    fn percentile_of_sorted_uses_nearest_rank() {
        assert_eq!(percentile_of_sorted(&[], 0.5), 0);
        assert_eq!(percentile_of_sorted(&[7], 0.5), 7);
        let v: Vec<u64> = (1..=100).collect();
        // Nearest rank ⌈p·n⌉: p50 of 1..=100 is the 50th value.
        assert_eq!(percentile_of_sorted(&v, 0.50), 50);
        assert_eq!(percentile_of_sorted(&v, 0.95), 95);
        assert_eq!(percentile_of_sorted(&v, 0.99), 99);
        assert_eq!(percentile_of_sorted(&v, 0.0), 1);
        assert_eq!(percentile_of_sorted(&v, 1.0), 100);
        // ⌈0.5·4⌉ = 2nd of four — the lower median, never interpolated.
        assert_eq!(percentile_of_sorted(&[10, 20, 30, 40], 0.5), 20);
    }

    #[test]
    fn histogram_percentiles_report_bucket_upper_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.99), 0);
        for _ in 0..99 {
            h.observe(100.0); // bucket 7 (64..128): upper bound 127
        }
        h.observe(5_000.0); // bucket 13 (4096..8192): upper bound 8191
        assert_eq!(h.percentile(0.50), 127);
        assert_eq!(h.percentile(0.95), 127);
        assert_eq!(h.percentile(1.0), 8191);
        // The catch-all bucket reports the true maximum.
        let mut top = Histogram::default();
        top.observe(1e12);
        assert_eq!(top.percentile(0.5), 1_000_000_000_000);
    }

    #[test]
    fn spans_record_lane_and_items() {
        let reg = Registry::new();
        drop(reg.span("recovery.probe", "osiris").lane(3).items(64));
        drop(reg.span("recovery.probe", "osiris").lane(1).items(64));
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        // Sorted by (name, label, lane) — lane 1 first.
        assert_eq!(spans[0].lane, Some(1));
        assert_eq!(spans[1].lane, Some(3));
        assert_eq!(spans[0].items, 64);
        assert_eq!(reg.span_count("recovery.probe"), 2);
        assert_eq!(reg.span_count("missing"), 0);
    }

    #[test]
    fn concurrent_updates_merge_deterministically() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for lane in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for _ in 0..100 {
                        reg.incr("items", "osiris", 1);
                    }
                    drop(reg.span("lane", "osiris").lane(lane));
                });
            }
        });
        let s = reg.snapshot();
        assert_eq!(s.counter("items", "osiris"), 400);
        assert_eq!(reg.span_count("lane"), 4);
    }

    #[test]
    fn jsonl_lines_are_balanced_and_tagged() {
        let reg = Registry::new();
        reg.incr("ecc_corrections_total", "agit-plus", 3);
        reg.gauge_set("wpq_occupancy", "agit-plus", 7.0);
        reg.observe("op_latency_ns", "agit-plus", 123.0);
        drop(reg.span("recovery", "agit-plus").items(5));
        let line = reg.snapshot().to_jsonl();
        assert!(line.starts_with("{\"type\":\"snapshot\""));
        assert!(line.ends_with("}\n"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"ecc_corrections_total\":{\"agit-plus\":3}"));
        assert!(line.contains("\"wpq_occupancy\""));
        assert!(line.contains("\"op_latency_ns\""));
        let spans = reg.spans_jsonl();
        assert!(spans.starts_with("{\"type\":\"span\",\"name\":\"recovery\""));
        assert_eq!(spans.lines().count(), 1);
    }

    #[test]
    fn prometheus_export_has_all_families() {
        let reg = Registry::new();
        reg.incr("events_total", "osiris", 2);
        reg.gauge_set("occupancy", "osiris", 0.5);
        reg.observe("latency_ns", "osiris", 3.0);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE anubis_events_total counter"));
        assert!(text.contains("anubis_events_total{scheme=\"osiris\"} 2"));
        assert!(text.contains("# TYPE anubis_occupancy gauge"));
        assert!(text.contains("# TYPE anubis_latency_ns histogram"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("anubis_latency_ns_count{scheme=\"osiris\"} 1"));
    }

    #[test]
    fn private_handles_are_isolated() {
        let (reg_a, tele_a) = Telemetry::private();
        let (reg_b, tele_b) = Telemetry::private();
        tele_a.incr("events", "x", 1);
        tele_b.incr("events", "x", 10);
        assert_eq!(reg_a.snapshot().counter("events", "x"), 1);
        assert_eq!(reg_b.snapshot().counter("events", "x"), 10);
    }
}
