//! End-to-end integration: every scheme replays the same synthetic
//! workloads through the timing engine, produces equivalent memory
//! contents, and (where applicable) survives a crash afterwards.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_sim::experiments::{bonsai_row, geomean, sgx_row, Scale};
use anubis_sim::{run_trace, TimingModel};
use anubis_workloads::{spec2006, OpKind, TraceGenerator};

fn cfg() -> AnubisConfig {
    AnubisConfig::small_test()
}

#[test]
fn all_schemes_agree_on_memory_contents() {
    // Replay one trace through every controller; then read back every
    // written address on each and compare against the model.
    let trace = TraceGenerator::new(spec2006::milc(), cfg().capacity_bytes).generate(2_000, 5);
    let model: std::collections::HashMap<u64, anubis_nvm::Block> = trace
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .map(|o| (o.addr.index(), anubis_sim::payload(o.addr.index())))
        .collect();

    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, &cfg());
        run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
        for (addr, expect) in &model {
            assert_eq!(
                ctrl.read(DataAddr::new(*addr)).unwrap(),
                *expect,
                "{} at {addr}",
                scheme.name()
            );
        }
    }
    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, &cfg());
        run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
        for (addr, expect) in &model {
            assert_eq!(
                ctrl.read(DataAddr::new(*addr)).unwrap(),
                *expect,
                "{} at {addr}",
                scheme.name()
            );
        }
    }
}

#[test]
fn figure10_ordering_reproduces() {
    // The paper's qualitative result at reduced scale: strict persistence
    // is by far the slowest; Osiris is nearly free; AGIT-Plus is between
    // Osiris and AGIT-Read.
    let scale = Scale {
        ops: 4_000,
        warmup_ops: 500,
        seed: 11,
    };
    let model = TimingModel::paper();
    let mut norms: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for spec in [spec2006::mcf(), spec2006::lbm(), spec2006::libquantum()] {
        let row = bonsai_row(&spec, &cfg(), &model, scale).unwrap();
        for (i, n) in row.normalized().into_iter().enumerate() {
            norms[i].push(n);
        }
    }
    let avg: Vec<f64> = norms.iter().map(|v| geomean(v)).collect();
    assert!(avg[1] > avg[2], "strict {} > osiris {}", avg[1], avg[2]);
    assert!(avg[1] > avg[3], "strict {} > agit-read {}", avg[1], avg[3]);
    assert!(avg[1] > avg[4], "strict {} > agit-plus {}", avg[1], avg[4]);
    assert!(avg[2] < 1.1, "osiris near baseline: {}", avg[2]);
    assert!(
        avg[4] <= avg[3] + 0.02,
        "plus {} <= read {}",
        avg[4],
        avg[3]
    );
}

#[test]
fn figure11_ordering_reproduces() {
    let scale = Scale {
        ops: 4_000,
        warmup_ops: 500,
        seed: 11,
    };
    let model = TimingModel::paper();
    let row = sgx_row(&spec2006::libquantum(), &cfg(), &model, scale).unwrap();
    let n = row.normalized();
    assert!(n[1] > n[3], "sgx-strict {} > asit {}", n[1], n[3]);
    assert!(n[3] > 1.0, "asit has nonzero overhead: {}", n[3]);
}

#[test]
fn mcf_penalizes_agit_read_most() {
    // Figure 10's signature data point: AGIT-Read's shadow-on-fill policy
    // hurts exactly the read-intensive workload.
    let scale = Scale {
        ops: 6_000,
        warmup_ops: 500,
        seed: 3,
    };
    let model = TimingModel::paper();
    let mcf = bonsai_row(&spec2006::mcf(), &cfg(), &model, scale).unwrap();
    let n = mcf.normalized();
    let read_overhead = n[3] - 1.0;
    let plus_overhead = n[4] - 1.0;
    assert!(
        read_overhead > 2.0 * plus_overhead,
        "mcf: agit-read overhead {read_overhead:.3} must dwarf agit-plus {plus_overhead:.3}"
    );
}

#[test]
fn recovery_after_full_trace_replay() {
    // The complete life-cycle at once: replay, crash, recover, audit.
    let trace = TraceGenerator::new(spec2006::soplex(), cfg().capacity_bytes).generate(3_000, 9);
    let model: std::collections::HashMap<u64, anubis_nvm::Block> = trace
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .map(|o| (o.addr.index(), anubis_sim::payload(o.addr.index())))
        .collect();
    for recoverable in [true, false] {
        if recoverable {
            let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg());
            run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
            ctrl.crash();
            let report = ctrl.recover().expect("AGIT-Plus recovers");
            assert!(report.total_ops() > 0);
            for (addr, expect) in &model {
                assert_eq!(ctrl.read(DataAddr::new(*addr)).unwrap(), *expect);
            }
        } else {
            let mut ctrl = SgxController::new(SgxScheme::Asit, &cfg());
            run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
            ctrl.crash();
            ctrl.recover().expect("ASIT recovers");
            for (addr, expect) in &model {
                assert_eq!(ctrl.read(DataAddr::new(*addr)).unwrap(), *expect);
            }
        }
    }
}

#[test]
fn write_amplification_ordering_matches_section_6_2() {
    let trace =
        TraceGenerator::new(spec2006::libquantum(), cfg().capacity_bytes).generate(3_000, 2);
    let model = TimingModel::paper();
    let amp = |r: &anubis_sim::RunResult| r.writes_per_data_write;
    let mut results = Vec::new();
    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, &cfg());
        results.push(run_trace(&mut ctrl, &trace, &model).unwrap());
    }
    let wb = amp(&results[0]);
    let strict = amp(&results[1]);
    assert!(
        strict >= wb + 3.0,
        "strict adds the whole tree path: {strict} vs {wb}"
    );
    let mut sgx_results = Vec::new();
    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, &cfg());
        sgx_results.push(run_trace(&mut ctrl, &trace, &model).unwrap());
    }
    let sgx_wb = amp(&sgx_results[0]);
    let sgx_strict = amp(&sgx_results[1]);
    let asit = amp(&sgx_results[3]);
    assert!(sgx_strict > asit, "strict {sgx_strict} > asit {asit}");
    assert!(asit > sgx_wb, "asit {asit} > write-back {sgx_wb}");
}
