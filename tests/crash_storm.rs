//! Crash-storm campaign over every recoverable scheme: randomized fault
//! plans (power cuts, torn writes, bit flips, plus write cuts injected
//! *during* recovery) must all terminate in a structured
//! `RecoveryOutcome` with the acknowledged-write contract intact, and the
//! campaign fingerprint must be bit-identical across lane counts.
//!
//! The smoke-sized campaign always runs; set `ANUBIS_CRASH_SWEEP=1` for
//! the exhaustive sweep (>1000 randomized plans, the scale
//! `bench_recovery_degraded` ships as an artifact).

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme, Supervised};
use anubis_sim::{crash_storm, StormConfig, StormReport};

fn config() -> AnubisConfig {
    AnubisConfig::small_test().with_spare_blocks(256)
}

fn storm_lane_pair<C, F>(make: F, cfg: &StormConfig, lanes: usize) -> StormReport
where
    C: Supervised,
    F: Fn() -> C,
{
    let serial = crash_storm(&make, cfg);
    assert_eq!(
        serial.recovered + serial.degraded + serial.quarantined,
        serial.runs,
        "{}: every run must end in a structured outcome",
        serial.scheme
    );
    let wide = crash_storm(&make, &cfg.clone().with_lanes(lanes));
    assert_eq!(
        serial.fingerprint, wide.fingerprint,
        "{}: storm fingerprint diverged between 1 and {lanes} lanes",
        serial.scheme
    );
    serial
}

#[test]
fn crash_storm_smoke_bonsai_family() {
    let cfg = StormConfig::smoke(0xC5).with_runs(6);
    storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::Osiris, &config()),
        &cfg,
        2,
    );
    storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::AgitRead, &config()),
        &cfg,
        8,
    );
    storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &config()),
        &cfg,
        2,
    );
    storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &config()),
        &cfg,
        8,
    );
}

#[test]
fn crash_storm_smoke_sgx_family() {
    let cfg = StormConfig::smoke(0x5C).with_runs(6);
    storm_lane_pair(|| SgxController::new(SgxScheme::Asit, &config()), &cfg, 8);
    storm_lane_pair(
        || SgxController::new(SgxScheme::StrictPersist, &config()),
        &cfg,
        2,
    );
}

#[test]
fn crash_storm_exhaustive_sweep() {
    // >1000 randomized plans across the six recoverable schemes; gated
    // behind ANUBIS_CRASH_SWEEP=1 (nightly CI).
    if std::env::var_os("ANUBIS_CRASH_SWEEP").is_none() {
        return;
    }
    let cfg = StormConfig {
        runs: 170,
        ops: 24,
        addr_space: 256,
        seed: 0xEE,
        lanes: 1,
        max_retries: 3,
        recovery_faults: true,
    };
    let mut plans = 0;
    plans += storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::Osiris, &config()),
        &cfg,
        8,
    )
    .runs;
    plans += storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::AgitRead, &config()),
        &cfg,
        8,
    )
    .runs;
    plans += storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &config()),
        &cfg,
        8,
    )
    .runs;
    plans += storm_lane_pair(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &config()),
        &cfg,
        8,
    )
    .runs;
    plans += storm_lane_pair(|| SgxController::new(SgxScheme::Asit, &config()), &cfg, 8).runs;
    plans += storm_lane_pair(
        || SgxController::new(SgxScheme::StrictPersist, &config()),
        &cfg,
        8,
    )
    .runs;
    assert!(plans >= 1000, "sweep must exercise at least 1000 plans");
}
