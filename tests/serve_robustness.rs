//! End-to-end robustness tests for `anubis-server`, run fully
//! in-process: a real TCP server on an ephemeral port, real client
//! connections, and chaos injection driving every typed failure path —
//! deadlines, retries, overload, circuit breaking, degraded-mode reads,
//! and connection-layer frame faults.

use std::io::Write as IoWrite;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use anubis_server::{
    parse_tenants, ClientError, Inject, Request, Response, ServeClient, ServeConfig, ServeError,
    ServeMode, Server, PROTO_VERSION,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn test_config(tenants: &str) -> ServeConfig {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let data_dir =
        std::env::temp_dir().join(format!("anubis-serve-test-{}-{}", std::process::id(), seq));
    let _ = std::fs::remove_dir_all(&data_dir);
    ServeConfig {
        data_dir,
        tenants: parse_tenants(tenants).expect("tenant spec"),
        chaos: true,
        breaker_threshold: 2,
        breaker_cooldown_ms: 150,
        retry_budget: 3,
        retry_backoff_ms: 1,
        idle_ms: 5_000,
        stall_ms: 500,
        ..ServeConfig::default()
    }
}

/// Polls until the tenant reports full serving mode.
fn await_full(client: &mut ServeClient, budget: Duration) {
    let start = Instant::now();
    loop {
        let stats = client.stats().expect("stats");
        if stats.mode == ServeMode::Full.code() {
            return;
        }
        assert!(
            start.elapsed() < budget,
            "tenant did not return to full service within {budget:?} (mode {})",
            stats.mode
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn handshake_auth_and_roundtrip() {
    let cfg = test_config("alpha:s3cret:bonsai,beta:hunter2:sgx");
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr();

    // Wrong token and unknown tenant are typed rejections.
    match ServeClient::connect(addr, "alpha", "wrong").err() {
        Some(ClientError::Server(ServeError::AuthFailed)) => {}
        other => panic!("wrong token must fail auth, got {other:?}"),
    }
    match ServeClient::connect(addr, "nobody", "s3cret").err() {
        Some(ClientError::Server(ServeError::AuthFailed)) => {}
        other => panic!("unknown tenant must fail auth, got {other:?}"),
    }

    // Both tenants serve writes and reads after their boot ladder.
    for (tenant, token) in [("alpha", "s3cret"), ("beta", "hunter2")] {
        let mut c = ServeClient::connect(addr, tenant, token).expect("connect");
        await_full(&mut c, Duration::from_secs(10));
        let payload = [0x5A; 64];
        c.write(7, payload, 0).expect("write");
        let (got, mode) = c.read(7, 0).expect("read");
        assert_eq!(got, payload);
        assert_eq!(mode, ServeMode::Full);
        let written = c
            .write_batch(vec![(1, [1; 64]), (2, [2; 64])], 0)
            .expect("batch");
        assert_eq!(written, 2);
        c.flush().expect("flush");
    }

    // A second Hello on an established session is a typed BadRequest.
    let mut c = ServeClient::connect(addr, "alpha", "s3cret").expect("connect");
    let resp = c
        .call(&Request::Hello {
            version: PROTO_VERSION,
            tenant: "alpha".into(),
            token: 0,
        })
        .expect("call");
    assert!(
        matches!(resp, Response::Err(ServeError::BadRequest { .. })),
        "duplicate handshake must be rejected, got {resp:?}"
    );
    server.shutdown();
}

#[test]
fn deadlines_and_retries_are_typed() {
    let cfg = test_config("alpha:tok:bonsai");
    let server = Server::start(cfg).expect("start");
    let mut c = ServeClient::connect(server.local_addr(), "alpha", "tok").expect("connect");
    await_full(&mut c, Duration::from_secs(10));
    c.write(3, [9; 64], 0).expect("seed write");

    // A request whose deadline is shorter than the injected stall is
    // rejected as DeadlineExceeded and NOT executed.
    c.inject(Inject::Stall { ms: 60 }).expect("inject stall");
    match c.read(3, 20) {
        Err(ClientError::Server(ServeError::DeadlineExceeded { budget_ms })) => {
            assert_eq!(budget_ms, 20);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    c.inject(Inject::Stall { ms: 0 }).expect("clear stall");

    // Transient faults below the retry budget are absorbed.
    c.inject(Inject::TransientFaults { count: 2 })
        .expect("inject transient");
    c.write(4, [4; 64], 0).expect("write despite transients");
    let stats = c.stats().expect("stats");
    assert!(
        stats.retries_total >= 2,
        "expected >= 2 retries, got {}",
        stats.retries_total
    );
    let (got, _) = c.read(4, 0).expect("read back");
    assert_eq!(got, [4; 64]);
    server.shutdown();
}

#[test]
fn breaker_trips_and_recovers_via_probe() {
    let cfg = test_config("alpha:tok:sgx");
    let cooldown = Duration::from_millis(u64::from(cfg.breaker_cooldown_ms));
    let server = Server::start(cfg).expect("start");
    let mut c = ServeClient::connect(server.local_addr(), "alpha", "tok").expect("connect");
    await_full(&mut c, Duration::from_secs(10));

    // Exhaust the retry budget twice (threshold = 2): breaker opens.
    c.inject(Inject::TransientFaults { count: 100 })
        .expect("inject");
    for _ in 0..2 {
        match c.write(1, [1; 64], 0) {
            Err(ClientError::Server(ServeError::Internal { .. })) => {}
            other => panic!("expected retry exhaustion, got {other:?}"),
        }
    }
    match c.write(1, [1; 64], 0) {
        Err(ClientError::Server(ServeError::CircuitOpen { .. })) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    let stats = c.stats().expect("stats");
    assert!(stats.breaker_trips >= 1);
    assert!(stats.rejected_circuit >= 1);

    // Clear the fault source; after the cooldown the half-open probe
    // succeeds and service resumes.
    c.inject(Inject::TransientFaults { count: 0 })
        .expect("clear");
    std::thread::sleep(cooldown + Duration::from_millis(50));
    c.write(1, [2; 64], 0).expect("probe write closes breaker");
    let (got, _) = c.read(1, 0).expect("read");
    assert_eq!(got, [2; 64]);
    server.shutdown();
}

#[test]
fn overload_is_typed_not_queued() {
    let mut cfg = test_config("alpha:tok:bonsai");
    cfg.ops_per_sec = 50.0;
    cfg.burst = 3;
    let server = Server::start(cfg).expect("start");
    let mut c = ServeClient::connect(server.local_addr(), "alpha", "tok").expect("connect");
    await_full(&mut c, Duration::from_secs(10));

    // Stats calls above also consume tokens; hammer until the bucket
    // runs dry — the rejection must be typed with a backoff hint.
    let mut saw_overload = false;
    for i in 0..20 {
        match c.write(i, [0; 64], 0) {
            Ok(()) => {}
            Err(ClientError::Server(ServeError::Overloaded { retry_after_ms })) => {
                assert!(retry_after_ms > 0, "overload must carry a backoff hint");
                saw_overload = true;
                break;
            }
            other => panic!("unexpected result {other:?}"),
        }
    }
    assert!(saw_overload, "token bucket never rejected");
    server.shutdown();
}

#[test]
fn degraded_mode_serves_verified_reads_during_recovery() {
    let cfg = test_config("alpha:tok:bonsai");
    let server = Server::start(cfg).expect("start");
    let mut c = ServeClient::connect(server.local_addr(), "alpha", "tok").expect("connect");
    await_full(&mut c, Duration::from_secs(10));

    let payload = [0xC3; 64];
    c.write(5, payload, 0).expect("write");
    // Drain the WPQ so the next read fetches the (tampered) device
    // contents instead of the still-queued write.
    c.flush().expect("flush");
    let boot_recoveries = c.stats().expect("stats").recoveries;

    // Stall the next ladder so the degraded window is observable, then
    // corrupt the line. The next read detects the tampering.
    c.inject(Inject::RecoveryStall { ms: 400 }).expect("stall");
    c.inject(Inject::CorruptLine { addr: 5, bit: 3 })
        .expect("corrupt");
    match c.read(5, 0) {
        Err(ClientError::Server(ServeError::Integrity { .. })) => {}
        other => panic!("tampered read must fail integrity, got {other:?}"),
    }

    // While the ladder runs: reads come from the last verified state,
    // writes are typed Degraded.
    let (got, mode) = c.read(5, 0).expect("degraded read");
    assert_eq!(got, payload, "degraded read must serve last verified data");
    assert_eq!(mode, ServeMode::ReadOnly);
    match c.write(6, [6; 64], 0) {
        Err(ClientError::Server(ServeError::Degraded { mode })) => {
            assert_eq!(mode, ServeMode::ReadOnly);
        }
        other => panic!("write during recovery must be Degraded, got {other:?}"),
    }

    // The ladder completes; full service resumes and the controller
    // serves the line again (recovered or quarantined per the outcome).
    await_full(&mut c, Duration::from_secs(10));
    let stats = c.stats().expect("stats");
    assert!(stats.recoveries > boot_recoveries, "ladder must have run");
    assert!(stats.degraded_reads >= 1);
    assert!(stats.degraded_writes >= 1);
    assert!(!stats.last_outcome.is_empty());
    let (_, mode) = c.read(5, 0).expect("post-recovery read");
    assert_eq!(mode, ServeMode::Full);
    c.write(6, [6; 64], 0).expect("post-recovery write");
    server.shutdown();
}

#[test]
fn frame_faults_are_typed_and_never_hang() {
    let cfg = test_config("alpha:tok:bonsai");
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr();

    // Garbage magic: the server answers BadFrame (best effort) and
    // closes; it must keep serving other connections.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0])
            .expect("garbage");
        raw.flush().expect("flush");
    }

    // Truncated frame: declare a payload then disconnect mid-frame.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut head = Vec::new();
        head.extend_from_slice(&anubis_server::protocol::MAGIC.to_le_bytes());
        head.extend_from_slice(&64u32.to_le_bytes());
        head.extend_from_slice(&[1, 2, 3]); // 3 of 64 promised bytes
        raw.write_all(&head).expect("truncated");
        raw.flush().expect("flush");
    }

    // Corrupted checksum: a well-formed frame with a flipped CRC.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let payload = Request::Stats.encode();
        let mut frame = Vec::new();
        frame.extend_from_slice(&anubis_server::protocol::MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = anubis_server::protocol::fnv1a64(&payload) ^ 1;
        frame.extend_from_slice(&crc.to_le_bytes());
        raw.write_all(&frame).expect("bad crc");
        raw.flush().expect("flush");
    }

    // After all that abuse, a healthy client still gets served.
    let mut c = ServeClient::connect(addr, "alpha", "tok").expect("connect");
    await_full(&mut c, Duration::from_secs(10));
    c.write(1, [1; 64], 0).expect("write");
    let (got, _) = c.read(1, 0).expect("read");
    assert_eq!(got, [1; 64]);
    server.shutdown();
}
