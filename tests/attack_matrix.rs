//! Tamper matrix: flip bits in every NVM region (data, side, counters,
//! tree nodes, shadow tables) under every scheme, and check the threat
//! model holds — single-bit faults on ECC-protected data are repaired,
//! everything beyond that is detected, at read time or recovery time.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemError, MemoryController,
    RecoveryError, SgxController, SgxScheme,
};
use anubis_nvm::Block;

fn cfg() -> AnubisConfig {
    AnubisConfig::small_test()
}

fn warmed_bonsai(scheme: BonsaiScheme) -> BonsaiController {
    let mut c = BonsaiController::new(scheme, &cfg());
    for i in 0..50u64 {
        c.write(DataAddr::new(i * 3), Block::filled(i as u8))
            .unwrap();
    }
    c.shutdown_flush().unwrap();
    c
}

fn warmed_sgx(scheme: SgxScheme) -> SgxController {
    let mut c = SgxController::new(scheme, &cfg());
    for i in 0..50u64 {
        c.write(DataAddr::new(i * 3), Block::filled(i as u8))
            .unwrap();
    }
    c.shutdown_flush().unwrap();
    c
}

/// Where a cold read died: recovery itself, or the post-recovery read.
/// Both are detections; the variant preserves the *real* typed error
/// instead of collapsing recovery failures into a fake MAC mismatch.
#[derive(Debug)]
enum ColdReadFailure {
    Recovery(RecoveryError),
    Read(MemError),
}

/// Fresh controller sharing the tampered device state, to force re-fetch
/// and re-verification (caches would otherwise mask NVM contents).
fn cold_read_bonsai(c: &mut BonsaiController, addr: DataAddr) -> Result<Block, ColdReadFailure> {
    // Crash + recover re-cold-starts caches while keeping device state.
    c.crash();
    c.recover().map_err(ColdReadFailure::Recovery)?;
    c.read(addr).map_err(ColdReadFailure::Read)
}

#[test]
fn data_region_tamper_corrected_then_detected_all_bonsai_schemes() {
    for scheme in BonsaiScheme::all() {
        let mut c = warmed_bonsai(scheme);
        let dev = c.layout().data_addr(DataAddr::new(3));
        // A single flipped ciphertext bit is within SEC-DED's correction
        // budget: the read transparently repairs it.
        c.domain_mut().device_mut().tamper_flip_bit(dev, 77);
        assert_eq!(
            c.read(DataAddr::new(3)).unwrap(),
            Block::filled(1),
            "{}: single flip must be corrected",
            scheme.name()
        );
        assert!(
            c.ecc_corrections() > 0,
            "{}: correction must be counted",
            scheme.name()
        );
        // A second flip in the same 64-bit word exceeds it: typed error,
        // never wrong data.
        c.domain_mut().device_mut().tamper_flip_bit(dev, 78);
        assert!(
            c.read(DataAddr::new(3)).is_err(),
            "{}: double flip must be detected",
            scheme.name()
        );
    }
}

#[test]
fn side_region_tamper_corrected_then_detected() {
    let mut c = warmed_bonsai(BonsaiScheme::AgitPlus);
    let side = c.layout().side_addr(DataAddr::new(6));
    // SEC-DED protects its own check bits: one flip in the stored ECC
    // word decodes as a check-bit error and is absorbed.
    c.domain_mut().device_mut().tamper_flip_bit(side, 5);
    assert_eq!(
        c.read(DataAddr::new(6)).unwrap(),
        Block::filled(2),
        "flipped check bit must be absorbed"
    );
    // The MAC (side word 1) has no such slack: any flip is detected.
    c.domain_mut().device_mut().tamper_flip_bit(side, 64 + 5);
    assert!(c.read(DataAddr::new(6)).is_err(), "tampered MAC must fail");
}

#[test]
fn counter_region_tamper_detected_after_recovery() {
    let mut c = warmed_bonsai(BonsaiScheme::AgitPlus);
    let (leaf, _) = c.layout().counter_of(DataAddr::new(3));
    let addr = c.layout().node_addr(leaf);
    c.domain_mut().device_mut().tamper_flip_bit(addr, 10);
    // Either recovery notices (root mismatch) or the read's path check
    // does — and the failure carries the real typed error either way.
    match cold_read_bonsai(&mut c, DataAddr::new(3)) {
        Ok(b) => panic!("tampered counter must be detected, read {b:?}"),
        Err(ColdReadFailure::Recovery(e)) => {
            // Any typed recovery error is a detection (here: the counter
            // probe finds no candidate) — but it must be corruption, not
            // a freshness refusal: tampering is repairable in principle,
            // rollback never is.
            assert!(
                !e.is_refusal(),
                "counter tamper is corruption, not a freshness refusal: {e}"
            );
        }
        Err(ColdReadFailure::Read(e)) => {
            assert!(
                matches!(e, MemError::Crypto(_) | MemError::Nvm(_)),
                "read-time detection must be a crypto/device error, got {e}"
            );
        }
    }
}

#[test]
fn tree_region_tamper_never_yields_wrong_data() {
    // Interior nodes are pure functions of the leaves, so a full rebuild
    // (write-back/Osiris recovery) *heals* interior tampering rather than
    // detecting it — the attack only matters if it could smuggle wrong
    // data past verification. Assert it cannot: after tamper + crash +
    // recovery, either recovery errors or every line reads back intact.
    let mut c = warmed_bonsai(BonsaiScheme::WriteBack);
    let node = anubis_itree::NodeId::new(1, 0);
    let addr = c.layout().node_addr(node);
    c.domain_mut().device_mut().tamper_flip_bit(addr, 444);
    match c.crash_recover_err() {
        Some(_) => {} // detected — fine
        None => {
            for i in 0..50u64 {
                assert_eq!(
                    c.read(DataAddr::new(i * 3)).unwrap(),
                    Block::filled(i as u8),
                    "healed tree must still serve correct data"
                );
            }
        }
    }
}

trait CrashRecoverErr {
    fn crash_recover_err(&mut self) -> Option<RecoveryError>;
}

impl CrashRecoverErr for BonsaiController {
    fn crash_recover_err(&mut self) -> Option<RecoveryError> {
        self.crash();
        self.recover().err()
    }
}

#[test]
fn data_replay_attack_detected() {
    // Record a sealed line, overwrite it, then replay the old ciphertext:
    // the counter has moved on, so ECC/MAC must fail.
    let mut c = warmed_bonsai(BonsaiScheme::Osiris);
    let a = DataAddr::new(9);
    c.write(a, Block::filled(1)).unwrap();
    c.domain_mut().drain_wpq();
    let dev = c.layout().data_addr(a);
    let side = c.layout().side_addr(a);
    let old_data = c.domain().device().peek(dev);
    let old_side = c.domain().device().peek(side);
    c.write(a, Block::filled(2)).unwrap();
    c.domain_mut().drain_wpq();
    c.domain_mut().device_mut().tamper_replay(dev, old_data);
    c.domain_mut().device_mut().tamper_replay(side, old_side);
    assert!(c.read(a).is_err(), "replayed stale data must fail");
}

#[test]
fn sgx_data_and_node_tampering_detected() {
    for scheme in SgxScheme::all() {
        let mut c = warmed_sgx(scheme);
        let dev = c.layout().data_addr(DataAddr::new(3));
        // One flip: repaired by SEC-DED. Two in the same word: detected.
        c.domain_mut().device_mut().tamper_flip_bit(dev, 123);
        assert_eq!(
            c.read(DataAddr::new(3)).unwrap(),
            Block::filled(1),
            "{}: single flip must be corrected",
            scheme.name()
        );
        assert!(c.ecc_corrections() > 0, "{}", scheme.name());
        c.domain_mut().device_mut().tamper_flip_bit(dev, 124);
        assert!(c.read(DataAddr::new(3)).is_err(), "{}", scheme.name());
    }
    // Interior node tamper, checked on cold fetch.
    let mut c = warmed_sgx(SgxScheme::WriteBack);
    c.crash();
    c.recover().expect("clean crash after flush recovers");
    let node = anubis_itree::NodeId::new(1, 0);
    let addr = c.layout().node_addr(node);
    c.domain_mut().device_mut().tamper_flip_bit(addr, 50);
    assert!(c.read(DataAddr::new(0)).is_err());
}

#[test]
fn asit_shadow_table_attacks_detected() {
    // (a) bit flip in an ST entry; (b) wholesale replay of an old ST
    // image; both must fail SHADOW_TREE_ROOT verification.
    let mut c = SgxController::new(SgxScheme::Asit, &cfg());
    for i in 0..40u64 {
        c.write(DataAddr::new(i), Block::filled(i as u8)).unwrap();
    }
    // Snapshot the ST region early.
    c.domain_mut().drain_wpq();
    let snapshot: Vec<(u64, Block)> = (0..c.layout().st_slots())
        .map(|s| {
            let a = c.layout().st_slot(s);
            (s, c.domain().device().peek(a))
        })
        .collect();
    for i in 40..80u64 {
        c.write(DataAddr::new(i), Block::filled(i as u8)).unwrap();
    }
    c.crash();
    // Replay the old ST image.
    for (s, b) in snapshot {
        let a = c.layout().st_slot(s);
        c.domain_mut().device_mut().tamper_replay(a, b);
    }
    assert_eq!(c.recover(), Err(RecoveryError::ShadowTableTampered));
}

#[test]
fn agit_shadow_table_lies_caught_by_root() {
    // AGIT's shadow tables are *not* separately protected; lying in them
    // misdirects recovery, which the final root check must catch.
    let mut c = BonsaiController::new(BonsaiScheme::AgitRead, &cfg());
    for i in 0..30u64 {
        c.write(DataAddr::new(i * 64), Block::filled(i as u8))
            .unwrap();
    }
    c.crash();
    // Zero out the whole SCT: recovery will "fix" nothing.
    for s in 0..c.layout().sct_slots() {
        let a = c.layout().sct_slot(s);
        c.domain_mut().device_mut().poke(a, Block::zeroed());
    }
    assert_eq!(c.recover(), Err(RecoveryError::RootMismatch));
}
