//! Batch/scalar equivalence: `write_batch` must leave the device image
//! bit-identical to the scalar `write` loop for every scheme. The batch
//! path shares commit groups and runs all data seals of a group through
//! the batch crypto path — none of which may change a single persisted
//! byte. Includes a counter-overflow trace so grouped writes exercise the
//! mid-batch page re-encryption path too.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::{Block, SplitMix64};

fn payload(tag: u64) -> Block {
    Block::from_words([
        tag,
        tag ^ 0xC3C3,
        !tag,
        tag << 5,
        tag >> 2,
        tag.wrapping_add(3),
        tag.wrapping_mul(11),
        2,
    ])
}

/// Full device image plus final visible contents of the touched lines.
fn observe<C: MemoryController>(ctrl: &mut C, touched: &[u64]) -> (Vec<Block>, Vec<Block>) {
    let image: Vec<Block> = {
        let dev = ctrl.domain().device();
        (0..dev.capacity_blocks())
            .map(|i| dev.peek(anubis_nvm::BlockAddr::new(i)))
            .collect()
    };
    let reads: Vec<Block> = touched
        .iter()
        .map(|a| ctrl.read(DataAddr::new(*a)).expect("final read"))
        .collect();
    (image, reads)
}

fn assert_batch_matches_scalar<C, F>(make: F, items: &[(DataAddr, Block)], label: &str)
where
    C: MemoryController,
    F: Fn() -> C,
{
    let touched: Vec<u64> = {
        let mut t: Vec<u64> = items.iter().map(|(a, _)| a.index()).collect();
        t.sort_unstable();
        t.dedup();
        t
    };

    let mut scalar = make();
    for (addr, data) in items {
        scalar.write(*addr, *data).expect("scalar write");
    }
    let (scalar_image, scalar_reads) = observe(&mut scalar, &touched);

    let mut batch = make();
    batch.write_batch(items).expect("batch write");
    let (batch_image, batch_reads) = observe(&mut batch, &touched);

    assert_eq!(
        scalar_image.len(),
        batch_image.len(),
        "{label}: device sizes differ"
    );
    for (i, (s, b)) in scalar_image.iter().zip(&batch_image).enumerate() {
        assert_eq!(s, b, "{label}: device block {i:#x} diverged");
    }
    assert_eq!(scalar_reads, batch_reads, "{label}: visible reads diverged");
    assert_eq!(
        scalar.total_cost().writes,
        batch.total_cost().writes,
        "{label}: write op counts diverged"
    );
}

fn random_items(seed: u64, len: usize, addr_space: u64) -> Vec<(DataAddr, Block)> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            (
                DataAddr::new(rng.gen_range(0..addr_space)),
                payload(rng.next_u64()),
            )
        })
        .collect()
}

#[test]
fn bonsai_batch_is_bit_identical_to_scalar() {
    let cfg = AnubisConfig::small_test();
    for scheme in [
        BonsaiScheme::StrictPersist,
        BonsaiScheme::Osiris,
        BonsaiScheme::AgitRead,
        BonsaiScheme::AgitPlus,
        BonsaiScheme::CounterWriteThrough,
        BonsaiScheme::LazyWriteBack,
    ] {
        for seed in [7u64, 42] {
            let items = random_items(seed ^ scheme as u64, 96, 600);
            assert_batch_matches_scalar(
                || BonsaiController::new(scheme, &cfg),
                &items,
                scheme.name(),
            );
        }
    }
}

#[test]
fn sgx_batch_is_bit_identical_to_scalar() {
    let cfg = AnubisConfig::small_test();
    for scheme in [
        SgxScheme::StrictPersist,
        SgxScheme::EagerWriteBack,
        SgxScheme::WriteBack,
        SgxScheme::Asit,
    ] {
        for seed in [11u64, 29] {
            let items = random_items(seed, 96, 600);
            assert_batch_matches_scalar(|| SgxController::new(scheme, &cfg), &items, scheme.name());
        }
    }
}

/// Hammering one line past `MINOR_MAX` forces a page re-encryption in the
/// middle of a grouped batch; the batch path must commit around it exactly
/// like the scalar loop does.
#[test]
fn bonsai_batch_overflow_reencryption_matches_scalar() {
    let cfg = AnubisConfig::small_test();
    let items: Vec<(DataAddr, Block)> = (0..140u64)
        .map(|i| (DataAddr::new(5), payload(i)))
        .collect();
    for scheme in [BonsaiScheme::AgitPlus, BonsaiScheme::Osiris] {
        assert_batch_matches_scalar(
            || BonsaiController::new(scheme, &cfg),
            &items,
            scheme.name(),
        );
    }
}

/// The trait's default `write_batch` is the scalar loop itself — sanity
/// check it compiles and agrees through the dyn-compatible surface.
#[test]
fn default_write_batch_is_the_scalar_loop() {
    let cfg = AnubisConfig::small_test();
    let items = random_items(3, 24, 100);
    let touched: Vec<u64> = {
        let mut t: Vec<u64> = items.iter().map(|(a, _)| a.index()).collect();
        t.sort_unstable();
        t.dedup();
        t
    };

    struct ScalarOnly<C: MemoryController>(C);
    // Forward everything except write_batch, which stays the default.
    impl<C: MemoryController> MemoryController for ScalarOnly<C> {
        type Backend = C::Backend;
        fn scheme_name(&self) -> &'static str {
            self.0.scheme_name()
        }
        fn read(&mut self, addr: DataAddr) -> Result<Block, anubis::MemError> {
            self.0.read(addr)
        }
        fn write(&mut self, addr: DataAddr, data: Block) -> Result<(), anubis::MemError> {
            self.0.write(addr, data)
        }
        fn crash(&mut self) {
            self.0.crash()
        }
        fn recover(&mut self) -> Result<anubis::RecoveryReport, anubis::RecoveryError> {
            self.0.recover()
        }
        fn shutdown_flush(&mut self) -> Result<(), anubis::MemError> {
            self.0.shutdown_flush()
        }
        fn domain(&self) -> &anubis_nvm::PersistenceDomain<Self::Backend> {
            self.0.domain()
        }
        fn domain_mut(&mut self) -> &mut anubis_nvm::PersistenceDomain<Self::Backend> {
            self.0.domain_mut()
        }
        fn last_cost(&self) -> anubis::OpCost {
            self.0.last_cost()
        }
        fn total_cost(&self) -> &anubis::CostAccum {
            self.0.total_cost()
        }
        fn reset_costs(&mut self) {
            self.0.reset_costs()
        }
    }

    let mut scalar = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
    for (addr, data) in &items {
        scalar.write(*addr, *data).expect("scalar write");
    }
    let (scalar_image, scalar_reads) = observe(&mut scalar, &touched);

    let mut dflt = ScalarOnly(BonsaiController::new(BonsaiScheme::AgitPlus, &cfg));
    dflt.write_batch(&items).expect("default write_batch");
    let (dflt_image, dflt_reads) = observe(&mut dflt, &touched);

    assert_eq!(scalar_image, dflt_image);
    assert_eq!(scalar_reads, dflt_reads);
}
