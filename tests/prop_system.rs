//! System-level property tests: random operation scripts with random
//! crash points against a plain HashMap model.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::Block;
use proptest::prelude::*;
use std::collections::HashMap;

fn block_strategy() -> impl Strategy<Value = Block> {
    prop::array::uniform8(any::<u64>()).prop_map(Block::from_words)
}

#[derive(Clone, Debug)]
enum SysOp {
    Write(u64, Block),
    Read(u64),
    CrashRecover,
}

fn sys_op() -> impl Strategy<Value = SysOp> {
    prop_oneof![
        4 => ((0u64..400), block_strategy()).prop_map(|(a, b)| SysOp::Write(a, b)),
        3 => (0u64..400).prop_map(SysOp::Read),
        1 => Just(SysOp::CrashRecover),
    ]
}

fn check_script<C: MemoryController>(mut ctrl: C, script: Vec<SysOp>) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, Block> = HashMap::new();
    for op in script {
        match op {
            SysOp::Write(a, b) => {
                ctrl.write(DataAddr::new(a), b)
                    .map_err(|e| TestCaseError::fail(format!("write: {e}")))?;
                model.insert(a, b);
            }
            SysOp::Read(a) => {
                let got = ctrl
                    .read(DataAddr::new(a))
                    .map_err(|e| TestCaseError::fail(format!("read: {e}")))?;
                let expect = model.get(&a).copied().unwrap_or_default();
                prop_assert_eq!(got, expect, "read {} mid-script", a);
            }
            SysOp::CrashRecover => {
                ctrl.crash();
                ctrl.recover()
                    .map_err(|e| TestCaseError::fail(format!("recover: {e}")))?;
            }
        }
    }
    for (a, b) in &model {
        let got = ctrl
            .read(DataAddr::new(*a))
            .map_err(|e| TestCaseError::fail(format!("final read: {e}")))?;
        prop_assert_eq!(got, *b, "final read {}", a);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// AGIT-Plus behaves exactly like a plain map under arbitrary scripts
    /// with crashes anywhere.
    #[test]
    fn agit_plus_is_a_crash_consistent_map(script in prop::collection::vec(sys_op(), 1..80)) {
        let ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &AnubisConfig::small_test());
        check_script(ctrl, script)?;
    }

    /// Same for AGIT-Read.
    #[test]
    fn agit_read_is_a_crash_consistent_map(script in prop::collection::vec(sys_op(), 1..60)) {
        let ctrl = BonsaiController::new(BonsaiScheme::AgitRead, &AnubisConfig::small_test());
        check_script(ctrl, script)?;
    }

    /// Same for ASIT on the SGX-style tree.
    #[test]
    fn asit_is_a_crash_consistent_map(script in prop::collection::vec(sys_op(), 1..80)) {
        let ctrl = SgxController::new(SgxScheme::Asit, &AnubisConfig::small_test());
        check_script(ctrl, script)?;
    }

    /// Osiris too (O(memory) recovery, but still correct).
    #[test]
    fn osiris_is_a_crash_consistent_map(script in prop::collection::vec(sys_op(), 1..40)) {
        let ctrl = BonsaiController::new(BonsaiScheme::Osiris, &AnubisConfig::small_test());
        check_script(ctrl, script)?;
    }
}
