//! System-level property tests: random operation scripts with random
//! crash points against a plain HashMap model. Driven by the in-tree
//! [`SplitMix64`] generator; failure messages carry the seed.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::{Block, SplitMix64};
use std::collections::HashMap;

fn rand_block(rng: &mut SplitMix64) -> Block {
    Block::from_words(core::array::from_fn(|_| rng.next_u64()))
}

#[derive(Clone, Debug)]
enum SysOp {
    Write(u64, Block),
    Read(u64),
    CrashRecover,
}

/// Weighted op mix matching the original distribution: 4 writes : 3
/// reads : 1 crash.
fn rand_script(rng: &mut SplitMix64, max_len: u64) -> Vec<SysOp> {
    let len = rng.gen_range(1..max_len) as usize;
    (0..len)
        .map(|_| match rng.gen_range(0..8) {
            0..=3 => SysOp::Write(rng.gen_range(0..400), rand_block(rng)),
            4..=6 => SysOp::Read(rng.gen_range(0..400)),
            _ => SysOp::CrashRecover,
        })
        .collect()
}

fn check_script<C: MemoryController>(mut ctrl: C, script: Vec<SysOp>, seed: u64) {
    let mut model: HashMap<u64, Block> = HashMap::new();
    for op in script {
        match op {
            SysOp::Write(a, b) => {
                ctrl.write(DataAddr::new(a), b)
                    .unwrap_or_else(|e| panic!("write: {e} (seed {seed})"));
                model.insert(a, b);
            }
            SysOp::Read(a) => {
                let got = ctrl
                    .read(DataAddr::new(a))
                    .unwrap_or_else(|e| panic!("read: {e} (seed {seed})"));
                let expect = model.get(&a).copied().unwrap_or_default();
                assert_eq!(got, expect, "read {a} mid-script (seed {seed})");
            }
            SysOp::CrashRecover => {
                ctrl.crash();
                ctrl.recover()
                    .unwrap_or_else(|e| panic!("recover: {e} (seed {seed})"));
            }
        }
    }
    for (a, b) in &model {
        let got = ctrl
            .read(DataAddr::new(*a))
            .unwrap_or_else(|e| panic!("final read: {e} (seed {seed})"));
        assert_eq!(got, *b, "final read {a} (seed {seed})");
    }
}

/// AGIT-Plus behaves exactly like a plain map under arbitrary scripts
/// with crashes anywhere.
#[test]
fn agit_plus_is_a_crash_consistent_map() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let script = rand_script(&mut rng, 80);
        let ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &AnubisConfig::small_test());
        check_script(ctrl, script, seed);
    }
}

/// Same for AGIT-Read.
#[test]
fn agit_read_is_a_crash_consistent_map() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed ^ 0xA617);
        let script = rand_script(&mut rng, 60);
        let ctrl = BonsaiController::new(BonsaiScheme::AgitRead, &AnubisConfig::small_test());
        check_script(ctrl, script, seed);
    }
}

/// Same for ASIT on the SGX-style tree.
#[test]
fn asit_is_a_crash_consistent_map() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed ^ 0xA517);
        let script = rand_script(&mut rng, 80);
        let ctrl = SgxController::new(SgxScheme::Asit, &AnubisConfig::small_test());
        check_script(ctrl, script, seed);
    }
}

/// Osiris too (O(memory) recovery, but still correct).
#[test]
fn osiris_is_a_crash_consistent_map() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed ^ 0x0515);
        let script = rand_script(&mut rng, 40);
        let ctrl = BonsaiController::new(BonsaiScheme::Osiris, &AnubisConfig::small_test());
        check_script(ctrl, script, seed);
    }
}
