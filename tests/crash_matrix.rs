//! Exhaustive crash-point injection: for every prefix of a workload,
//! crash there, recover, and verify that every acknowledged write is
//! intact — for every scheme that claims recoverability.
//!
//! This is invariant 6 of DESIGN.md, the strongest end-to-end guarantee
//! the paper's schemes make.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::Block;
use std::collections::HashMap;

fn payload(op: u64) -> Block {
    Block::from_words([
        op,
        op * 3,
        !op,
        op << 9,
        op ^ 0xFEED,
        op + 1,
        op.rotate_left(7),
        0x42,
    ])
}

/// The scripted workload: a mix of overwrites, spread, and read traffic.
fn script(n: usize) -> Vec<(bool, u64)> {
    (0..n as u64)
        .map(|i| {
            let write = i % 3 != 2;
            let addr = (i * 37) % 300;
            (write, addr)
        })
        .collect()
}

fn run_crash_matrix<C, F>(make: F, name: &str)
where
    C: MemoryController,
    F: Fn() -> C,
{
    let ops = script(48);
    // Crash after every k ops (k=0 included: crash before any work).
    for k in 0..=ops.len() {
        let mut ctrl = make();
        let mut model: HashMap<u64, Block> = HashMap::new();
        for (i, (is_write, addr)) in ops.iter().take(k).enumerate() {
            if *is_write {
                let b = payload(i as u64);
                ctrl.write(DataAddr::new(*addr), b)
                    .unwrap_or_else(|e| panic!("{name}: write {i} failed: {e}"));
                model.insert(*addr, b);
            } else {
                ctrl.read(DataAddr::new(*addr))
                    .unwrap_or_else(|e| panic!("{name}: read {i} failed: {e}"));
            }
        }
        ctrl.crash();
        ctrl.recover()
            .unwrap_or_else(|e| panic!("{name}: recovery after {k} ops failed: {e}"));
        for (addr, expect) in &model {
            let got = ctrl
                .read(DataAddr::new(*addr))
                .unwrap_or_else(|e| panic!("{name}: post-recovery read {addr} failed: {e}"));
            assert_eq!(&got, expect, "{name}: addr {addr} after crash at {k}");
        }
    }
}

#[test]
fn osiris_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || BonsaiController::new(BonsaiScheme::Osiris, &cfg),
        "osiris",
    );
}

#[test]
fn agit_read_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || BonsaiController::new(BonsaiScheme::AgitRead, &cfg),
        "agit-read",
    );
}

#[test]
fn agit_plus_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        "agit-plus",
    );
}

#[test]
fn strict_persist_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
        "strict-persist",
    );
}

#[test]
fn asit_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(|| SgxController::new(SgxScheme::Asit, &cfg), "asit");
}

#[test]
fn sgx_strict_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || SgxController::new(SgxScheme::StrictPersist, &cfg),
        "sgx-strict",
    );
}

#[test]
fn repeated_crashes_with_interleaved_work() {
    // Crash, recover, write more, crash again — five rounds, both families.
    let cfg = AnubisConfig::small_test();
    let mut bonsai = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
    let mut sgx = SgxController::new(SgxScheme::Asit, &cfg);
    let mut model: HashMap<u64, Block> = HashMap::new();
    for round in 0..5u64 {
        for i in 0..30u64 {
            let addr = (round * 13 + i * 7) % 200;
            let b = payload(round * 1000 + i);
            bonsai.write(DataAddr::new(addr), b).unwrap();
            sgx.write(DataAddr::new(addr), b).unwrap();
            model.insert(addr, b);
        }
        bonsai.crash();
        bonsai
            .recover()
            .unwrap_or_else(|e| panic!("bonsai round {round}: {e}"));
        sgx.crash();
        sgx.recover()
            .unwrap_or_else(|e| panic!("sgx round {round}: {e}"));
        for (addr, expect) in &model {
            assert_eq!(bonsai.read(DataAddr::new(*addr)).unwrap(), *expect);
            assert_eq!(sgx.read(DataAddr::new(*addr)).unwrap(), *expect);
        }
    }
}

#[test]
fn crash_during_page_reencryption_recovers() {
    // Drive a minor counter to overflow, then crash right after the op
    // that triggered re-encryption; the persistent re-encryption log must
    // carry recovery through.
    let cfg = AnubisConfig::small_test();
    for scheme in [BonsaiScheme::Osiris, BonsaiScheme::AgitPlus] {
        let mut ctrl = BonsaiController::new(scheme, &cfg);
        let hot = DataAddr::new(70);
        let cold = DataAddr::new(71);
        ctrl.write(cold, payload(999)).unwrap();
        for i in 0..=127u64 {
            ctrl.write(hot, payload(i)).unwrap();
        }
        // Overflow happened inside the loop (128th increment).
        ctrl.crash();
        ctrl.recover()
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert_eq!(ctrl.read(hot).unwrap(), payload(127), "{}", scheme.name());
        assert_eq!(ctrl.read(cold).unwrap(), payload(999), "{}", scheme.name());
    }
}

#[test]
fn intra_op_sweep_mode() {
    // Sweep mode: instead of crashing at op boundaries, cut power after
    // individual device-level writes *inside* operations, via the
    // fault-injection campaigns in `anubis_sim::fault`. A strided subset
    // keeps this cheap next to the matrices above; set
    // `ANUBIS_CRASH_SWEEP=1` for every injection point (the full sweep
    // also runs, per scheme, in `tests/fault_matrix.rs`).
    let stride = if std::env::var_os("ANUBIS_CRASH_SWEEP").is_some() {
        1
    } else {
        7
    };
    let cfg = AnubisConfig::small_test();
    let ops = script(48);
    for report in [
        anubis_sim::power_cut_sweep(
            || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &ops,
            stride,
        ),
        anubis_sim::power_cut_sweep(|| SgxController::new(SgxScheme::Asit, &cfg), &ops, stride),
    ] {
        assert!(
            report.injection_points > 0,
            "{}: no faults fired",
            report.scheme
        );
        assert_eq!(
            report.recovered, report.injection_points,
            "{}: every intra-op power cut must recover",
            report.scheme
        );
    }
}

#[test]
fn stale_counter_beyond_stop_loss_errs_without_panic() {
    // The stop-loss boundary: Osiris can only probe `stop_loss` minor
    // increments past the persisted counter. Replay a stale counter block
    // whose gap to the actual data exceeds that budget — recovery must
    // surface a typed error, never panic, and the same crash image must
    // still recover when the counter is left untampered.
    use anubis::RecoveryError;
    let cfg = AnubisConfig::small_test();
    let mut c = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
    let a = DataAddr::new(9);
    c.write(a, payload(0)).unwrap();
    c.shutdown_flush().unwrap();
    let (leaf, _) = c.layout().counter_of(a);
    let ctr = c.layout().node_addr(leaf);
    let stale = c.domain().device().peek(ctr);
    // stop_loss + 2 more writes: the data line's minor is now further
    // ahead of the recorded `stale` block than probing can bridge.
    for i in 1..=u64::from(cfg.stop_loss) + 2 {
        c.write(a, payload(i)).unwrap();
    }
    c.domain_mut().drain_wpq();
    c.crash();

    // Positive control: the honest crash image recovers.
    let mut honest = c.clone();
    honest
        .recover()
        .expect("untampered crash image must recover");

    c.domain_mut().device_mut().tamper_replay(ctr, stale);
    let err = c
        .recover()
        .expect_err("a counter gap beyond stop-loss must be an error, not a panic");
    assert!(
        matches!(
            err,
            RecoveryError::CounterNotRecovered { .. } | RecoveryError::StopLossExceeded { .. }
        ),
        "unexpected recovery error: {err}"
    );
}

#[test]
fn shadow_capacity_exceeded_is_lane_invariant() {
    // A verified Shadow Table tracking more same-set nodes than the
    // metadata cache's associativity can hold must fail ASIT recovery
    // with `ShadowCapacityExceeded` — and the same offending address —
    // at 1, 2, and 8 recovery lanes.
    use anubis::{RecoveryError, StEntry};
    use anubis_itree::NodeId;

    let cfg = AnubisConfig::small_test();
    let sets = (cfg.metadata_cache_bytes / 64 / cfg.metadata_cache_ways) as u64;
    let conflicting = cfg.metadata_cache_ways as u64 + 1;
    let mut c = SgxController::new(SgxScheme::Asit, &cfg);
    // Leaf node addresses `sets` blocks apart share a cache set, so
    // ways + 1 of them can never co-reside.
    for j in 0..conflicting {
        let addr = c.layout().node_addr(NodeId::new(0, j * sets));
        let entry = StEntry::new(addr, 0, [0u64; 8]);
        let slot = c.layout().st_slot(j);
        c.domain_mut().device_mut().poke(slot, entry.to_block());
    }
    c.debug_refresh_shadow_root_from_nvm();

    let mut failing = Vec::new();
    for lanes in [1usize, 2, 8] {
        let mut run = c.clone();
        run.crash();
        match run.recover_with_lanes(lanes) {
            Err(RecoveryError::ShadowCapacityExceeded { addr }) => failing.push(addr),
            Err(e) => panic!("lanes {lanes}: expected ShadowCapacityExceeded, got {e}"),
            Ok(_) => panic!("lanes {lanes}: over-capacity shadow table must not recover"),
        }
    }
    assert_eq!(
        failing[0], failing[1],
        "lanes 1 vs 2 disagree on the address"
    );
    assert_eq!(
        failing[0], failing[2],
        "lanes 1 vs 8 disagree on the address"
    );
}

#[test]
fn counter_write_through_survives_every_crash_point() {
    let cfg = AnubisConfig::small_test();
    run_crash_matrix(
        || BonsaiController::new(BonsaiScheme::CounterWriteThrough, &cfg),
        "ctr-write-through",
    );
}
