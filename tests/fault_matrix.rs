//! Intra-op fault torture matrix.
//!
//! Where `crash_matrix.rs` crashes *between* operations, this harness
//! crashes *inside* them: a [`anubis_nvm::FaultPlan`] fires on the k-th
//! counted device-level write since controller construction, and the
//! sweeps in `anubis_sim::fault` walk k across every persist the scripted
//! workload performs. The contract checked at every injection point:
//! recovery either restores all acknowledged writes, or fails with a
//! *typed* integrity/corruption error — never silent wrong data.
//!
//! Set `ANUBIS_FAULT_SMOKE=1` to run a strided subset (CI quick job); the
//! default is the exhaustive sweep.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, RecoveryError,
    SgxController, SgxScheme,
};
use anubis_sim::fault::{bit_flip_sweep, op_payload, power_cut_sweep, torn_write_sweep, ScriptOp};

/// The scripted workload: 32 writes and 16 reads over 300 data lines
/// (same shape as `crash_matrix.rs`, payloads keyed by script position).
fn script() -> Vec<ScriptOp> {
    (0..48u64).map(|i| (i % 3 != 2, (i * 37) % 300)).collect()
}

/// Exhaustive by default; `ANUBIS_FAULT_SMOKE` selects a strided subset
/// for quick CI runs.
fn stride() -> u64 {
    if std::env::var_os("ANUBIS_FAULT_SMOKE").is_some() {
        23
    } else {
        1
    }
}

fn assert_full_recovery(report: &anubis_sim::CampaignReport) {
    assert!(
        report.injection_points > 48 / stride(),
        "{}: expected more intra-op injection points than ops, got {}",
        report.scheme,
        report.injection_points
    );
    assert_eq!(
        report.recovered, report.injection_points,
        "{}: every power cut must recover all acknowledged writes",
        report.scheme
    );
    assert_eq!(
        report.detected, 0,
        "{}: power cuts never corrupt",
        report.scheme
    );
}

// ---------------------------------------------------------------------------
// Power cuts after every counted device write, per recoverable scheme.
// ---------------------------------------------------------------------------

#[test]
fn power_cut_every_device_write_agit_read() {
    let cfg = AnubisConfig::small_test();
    let report = power_cut_sweep(
        || BonsaiController::new(BonsaiScheme::AgitRead, &cfg),
        &script(),
        stride(),
    );
    assert_full_recovery(&report);
}

#[test]
fn power_cut_every_device_write_agit_plus() {
    let cfg = AnubisConfig::small_test();
    let report = power_cut_sweep(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        &script(),
        stride(),
    );
    assert_full_recovery(&report);
}

#[test]
fn power_cut_every_device_write_strict_persist() {
    let cfg = AnubisConfig::small_test();
    let report = power_cut_sweep(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
        &script(),
        stride(),
    );
    assert_full_recovery(&report);
}

#[test]
fn power_cut_every_device_write_asit() {
    let cfg = AnubisConfig::small_test();
    let report = power_cut_sweep(
        || SgxController::new(SgxScheme::Asit, &cfg),
        &script(),
        stride(),
    );
    assert_full_recovery(&report);
}

// ---------------------------------------------------------------------------
// Torn block writes: recovery may fail, but only with a typed error.
// ---------------------------------------------------------------------------

fn assert_no_silent_corruption(report: &anubis_sim::CampaignReport) {
    assert!(
        report.injection_points > 0,
        "{}: no faults fired",
        report.scheme
    );
    // run_with_fault panics on silent wrong data; reaching here means every
    // injection resolved as clean recovery or typed detection.
    assert_eq!(
        report.recovered + report.detected,
        report.injection_points,
        "{}: verdict accounting",
        report.scheme
    );
}

#[test]
fn torn_writes_recover_or_detect_agit_plus() {
    let cfg = AnubisConfig::small_test();
    let report = torn_write_sweep(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        &script(),
        3 * stride(),
        &[1, 4, 7],
    );
    assert_no_silent_corruption(&report);
}

#[test]
fn torn_writes_recover_or_detect_strict_persist() {
    let cfg = AnubisConfig::small_test();
    let report = torn_write_sweep(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
        &script(),
        3 * stride(),
        &[1, 4, 7],
    );
    assert_no_silent_corruption(&report);
}

#[test]
fn torn_writes_recover_or_detect_asit() {
    let cfg = AnubisConfig::small_test();
    let report = torn_write_sweep(
        || SgxController::new(SgxScheme::Asit, &cfg),
        &script(),
        3 * stride(),
        &[1, 4, 7],
    );
    assert_no_silent_corruption(&report);
}

// ---------------------------------------------------------------------------
// Bit flips injected on in-flight device writes.
// ---------------------------------------------------------------------------

#[test]
fn single_bit_flips_corrected_or_detected_agit_plus() {
    let cfg = AnubisConfig::small_test();
    let report = bit_flip_sweep(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        &script(),
        2 * stride(),
        &[11],
    );
    assert_no_silent_corruption(&report);
}

#[test]
fn single_bit_flips_corrected_or_detected_asit() {
    let cfg = AnubisConfig::small_test();
    let report = bit_flip_sweep(
        || SgxController::new(SgxScheme::Asit, &cfg),
        &script(),
        2 * stride(),
        &[11],
    );
    assert_no_silent_corruption(&report);
}

#[test]
fn double_bit_flips_never_serve_wrong_data() {
    // Two flips in the same 64-bit word defeat SEC-DED correction; the
    // sweep's internal asserts guarantee the damage surfaces as typed
    // errors (or is harmlessly overwritten), never as wrong data.
    let cfg = AnubisConfig::small_test();
    for scheme in [BonsaiScheme::AgitRead, BonsaiScheme::Osiris] {
        let report = bit_flip_sweep(
            || BonsaiController::new(scheme, &cfg),
            &script(),
            4 * stride(),
            &[3, 4],
        );
        assert_no_silent_corruption(&report);
    }
    let report = bit_flip_sweep(
        || SgxController::new(SgxScheme::StrictPersist, &cfg),
        &script(),
        4 * stride(),
        &[3, 4],
    );
    assert_no_silent_corruption(&report);
}

// ---------------------------------------------------------------------------
// Targeted uncorrectable flips on metadata / shadow-table regions: these
// MUST surface as typed detection errors for every scheme.
// ---------------------------------------------------------------------------

/// Runs the script, returning the controller plus a victim address that
/// was acknowledged early in the workload.
fn run_script<C: MemoryController>(ctrl: &mut C) -> DataAddr {
    for (i, (is_write, addr)) in script().into_iter().enumerate() {
        if is_write {
            ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .unwrap();
        } else {
            ctrl.read(DataAddr::new(addr)).unwrap();
        }
    }
    DataAddr::new(37) // written at script position 1, never overwritten
}

#[test]
fn uncorrectable_counter_flip_detected_bonsai() {
    let cfg = AnubisConfig::small_test();
    for scheme in [
        BonsaiScheme::StrictPersist,
        BonsaiScheme::Osiris,
        BonsaiScheme::AgitRead,
        BonsaiScheme::AgitPlus,
        BonsaiScheme::CounterWriteThrough,
    ] {
        let mut ctrl = BonsaiController::new(scheme, &cfg);
        let victim = run_script(&mut ctrl);
        let (leaf, _) = ctrl.layout().counter_of(victim);
        let node_addr = ctrl.layout().node_addr(leaf);
        ctrl.crash();
        // Flip high bits of the major counter: far outside any recovery
        // probe window, so this cannot be silently repaired.
        ctrl.domain_mut()
            .device_mut()
            .tamper_flip_bit(node_addr, 60);
        ctrl.domain_mut()
            .device_mut()
            .tamper_flip_bit(node_addr, 61);
        match ctrl.recover() {
            Err(_) => {} // typed RecoveryError at recovery time
            Ok(_) => {
                let err = ctrl.read(victim).expect_err(&format!(
                    "{}: flipped counter block must not serve data",
                    scheme.name()
                ));
                assert!(
                    err.is_detected_corruption(),
                    "{}: expected typed corruption error, got {err}",
                    scheme.name()
                );
            }
        }
    }
}

#[test]
fn uncorrectable_shadow_table_flip_detected_asit() {
    let cfg = AnubisConfig::small_test();
    let mut ctrl = SgxController::new(SgxScheme::Asit, &cfg);
    let _ = run_script(&mut ctrl);
    ctrl.crash();
    // The shadow tree covers every ST slot, so any flip in the region must
    // break the root check.
    let slot = ctrl.layout().st_slot(0);
    ctrl.domain_mut().device_mut().tamper_flip_bit(slot, 60);
    ctrl.domain_mut().device_mut().tamper_flip_bit(slot, 61);
    let err = ctrl.recover().expect_err("tampered ST must be detected");
    assert!(
        matches!(err, RecoveryError::ShadowTableTampered),
        "expected ShadowTableTampered, got {err}"
    );
}

#[test]
fn uncorrectable_counter_node_flip_detected_sgx() {
    let cfg = AnubisConfig::small_test();
    for scheme in [SgxScheme::StrictPersist, SgxScheme::Asit] {
        let mut ctrl = SgxController::new(scheme, &cfg);
        let victim = run_script(&mut ctrl);
        let (leaf, _) = ctrl.layout().leaf_of(victim);
        let node_addr = ctrl.layout().node_addr(leaf);
        ctrl.crash();
        // Counters are 7-byte-packed (counter i in bytes 7i..7i+7); bits
        // 160..162 are the *high* bits of counter 2 — outside the LSB
        // window ASIT's shadow entries can splice back, and covered by the
        // node MAC in every scheme. (Low counter bits or the MAC field
        // would be legitimately reconstructed by Algorithm 2.)
        ctrl.domain_mut()
            .device_mut()
            .tamper_flip_bit(node_addr, 160);
        ctrl.domain_mut()
            .device_mut()
            .tamper_flip_bit(node_addr, 161);
        match ctrl.recover() {
            Err(_) => {} // e.g. NodeMacMismatch during ASIT Algorithm 2
            Ok(_) => {
                let err = ctrl.read(victim).expect_err(&format!(
                    "{}: flipped counter node must not serve data",
                    scheme.name()
                ));
                assert!(
                    err.is_detected_corruption(),
                    "{}: expected typed corruption error, got {err}",
                    scheme.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted flips on the data region: SEC-DED repairs one bit, reports two.
// ---------------------------------------------------------------------------

#[test]
fn data_region_flip_corrected_then_detected() {
    let cfg = AnubisConfig::small_test();
    let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
    let victim = run_script(&mut ctrl);
    let expect = op_payload(1, victim.index());
    let dev = ctrl.layout().data_addr(victim);

    // One flipped ciphertext bit: transparently repaired.
    ctrl.domain_mut().device_mut().tamper_flip_bit(dev, 100);
    assert_eq!(
        ctrl.read(victim).unwrap(),
        expect,
        "single flip must be corrected"
    );
    assert!(ctrl.ecc_corrections() > 0, "correction must be counted");

    // Correction is in-flight only (no scrubbing), so bit 100 is still
    // flipped on the device; a second flip in the same word defeats
    // SEC-DED: typed error.
    ctrl.domain_mut().device_mut().tamper_flip_bit(dev, 101);
    let err = ctrl
        .read(victim)
        .expect_err("double flip must not serve data");
    assert!(
        err.is_detected_corruption(),
        "expected typed corruption error, got {err}"
    );
}
