//! Restart-survivability drills over the file-backed NVM device.
//!
//! `tests/crash_matrix.rs` and friends crash controllers *in process*:
//! the device image survives because it shares the address space. These
//! tests cross the process-death boundary instead (without actually
//! spawning processes — `bench_drill` does that): a controller serves a
//! deterministic script against a [`FileBackend`] image, the image file
//! is copied at arbitrary acknowledgement points (byte-identical to what
//! a SIGKILL at that instant would leave on disk, since every ack rides
//! a synced barrier), and a **fresh controller in a fresh device** must
//! reopen the copy, recover, and serve every acknowledged write.
//!
//! Also covered here: the write-cut (dying platform) primitive must
//! suppress file-backend flushes so an unacknowledged tail never leaks
//! into the image; post-recovery snapshots must be bit-identical across
//! recovery lane counts and across a snapshot→restore→snapshot round
//! trip; and a corrupted persisted quarantine table must surface as a
//! typed [`RecoveryError::CorruptImage`] hint that enters the supervisor
//! ladder at rung 3 via [`Supervisor::repair_then_recover`].

use std::fs;
use std::path::{Path, PathBuf};

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, RecoveryError,
    SgxController, SgxScheme, Supervised, Supervisor,
};
use anubis_nvm::{Block, FileBackend, NvmBackend, Snapshot, BLOCK_BYTES};
use anubis_sim::drill::{drill_script, verify_dead_image, DrillFamily};
use anubis_sim::fault::{op_payload, ScriptOp};

fn config() -> AnubisConfig {
    AnubisConfig::small_test()
}

/// A per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anubis-drill-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs supervised recovery on a freshly (re)opened controller, entering
/// at rung 3 when reopen produced a corruption hint.
fn recover_fresh<C: Supervised>(ctrl: &mut C, hint: Option<RecoveryError>) {
    let sup = Supervisor::new();
    match hint {
        Some(err) => {
            sup.repair_then_recover(ctrl, &err)
                .expect("rung-3 recovery of reopened image");
        }
        None => {
            sup.recover(ctrl).expect("recovery of reopened image");
        }
    }
}

/// Image copies taken mid-run, as `(path, acks-at-copy)` pairs.
type ImageCopies = Vec<(PathBuf, usize)>;

/// Serves `script`, copying the image file at the given ack counts.
/// Returns the ack log and the copies (path, acks-at-copy).
fn serve_with_copies<C: Supervised>(
    mut ctrl: C,
    hint: Option<RecoveryError>,
    image: &Path,
    script: &[ScriptOp],
    copy_at: &[u64],
    dir: &Path,
) -> (Vec<(u64, u64)>, ImageCopies) {
    recover_fresh(&mut ctrl, hint);
    let mut acked = Vec::new();
    let mut copies = Vec::new();
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .unwrap_or_else(|e| panic!("drill write op {i} failed: {e}"));
            acked.push((i as u64, addr));
            if copy_at.contains(&(acked.len() as u64)) {
                let copy = dir.join(format!("at{}.wal", acked.len()));
                fs::copy(image, &copy).expect("copy image mid-run");
                copies.push((copy, acked.len()));
            }
        } else {
            ctrl.read(DataAddr::new(addr))
                .unwrap_or_else(|e| panic!("drill read op {i} failed: {e}"));
        }
    }
    let fin = dir.join("final.wal");
    fs::copy(image, &fin).expect("copy final image");
    copies.push((fin, acked.len()));
    (acked, copies)
}

/// The in-process restart drill: every image copy must recover in a
/// fresh controller at 1/2/8 lanes with identical fingerprints and no
/// acknowledged write lost.
fn in_process_drill(family: DrillFamily) {
    let dir = scratch(family.name());
    let image = dir.join("image.wal");
    let script = drill_script(400, 300, 0xD1A7);
    let cfg = config();
    let backend = FileBackend::open(&image).expect("open fresh image");
    let (acked, copies) = match family {
        DrillFamily::BonsaiAgitPlus => {
            let (ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &cfg, backend);
            serve_with_copies(ctrl, hint, &image, &script, &[5, 60, 200], &dir)
        }
        DrillFamily::SgxAsit => {
            let (ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &cfg, backend);
            serve_with_copies(ctrl, hint, &image, &script, &[5, 60, 200], &dir)
        }
    };
    assert!(acked.len() > 200, "script should ack >200 writes");
    for (copy, n) in &copies {
        verify_dead_image(family, copy, &[1, 2, 8], &acked[..*n], &script)
            .unwrap_or_else(|e| panic!("{} image at {n} acks: {e}", family.name()));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_drill_in_process_bonsai_agit_plus() {
    in_process_drill(DrillFamily::BonsaiAgitPlus);
}

#[test]
fn restart_drill_in_process_sgx_asit() {
    in_process_drill(DrillFamily::SgxAsit);
}

/// Raw fingerprint of an image file: its replayed blocks and registers,
/// independent of any controller.
fn raw_fingerprint(image: &Path) -> u64 {
    let backend = FileBackend::open(image).expect("reopen image for fingerprint");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (phys, block) in backend.entries() {
        mix(&phys.to_le_bytes());
        mix(block.as_bytes());
    }
    for (idx, block) in backend.regs() {
        mix(&[idx]);
        mix(block.as_bytes());
    }
    h
}

#[test]
fn write_cut_mid_recovery_suppresses_file_backend_flushes() {
    let dir = scratch("write-cut");
    let image = dir.join("image.wal");
    let cfg = config();
    let script = drill_script(150, 100, 0xC07);
    let mut acked = Vec::new();
    {
        let backend = FileBackend::open(&image).expect("open fresh image");
        let (mut ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &cfg, backend);
        recover_fresh(&mut ctrl, hint);
        for (i, &(is_write, addr)) in script.iter().enumerate() {
            if is_write {
                ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                    .expect("drill write");
                acked.push((i as u64, addr));
            } else {
                ctrl.read(DataAddr::new(addr)).expect("drill read");
            }
        }

        // Power dies again one device write into the recovery attempt:
        // everything the aborted recovery does past that instant must
        // stay off the image.
        ctrl.crash();
        ctrl.domain_mut().device_mut().arm_write_cut(1);
        let _ = Supervisor::new().recover(&mut ctrl);
        assert!(
            ctrl.domain().device().write_cut_fired(),
            "recovery of a dirty crash must write (cut never fired)"
        );
        assert!(
            ctrl.domain().device().backend().flushes_suppressed(),
            "write cut must suppress file-backend flushes"
        );
        let frozen = raw_fingerprint(&image);

        // A dying platform persists nothing more: further traffic and
        // explicit barriers must leave the image byte-identical.
        let _ = ctrl.write(DataAddr::new(1), op_payload(9_999, 1));
        ctrl.domain_mut().drain_wpq();
        assert_eq!(
            raw_fingerprint(&image),
            frozen,
            "dropped tail leaked into the image after the cut instant"
        );
    }
    // The restarted machine reopens the half-recovered image and must
    // still serve every write acknowledged before the first crash, at
    // every lane count, with identical fingerprints.
    verify_dead_image(
        DrillFamily::BonsaiAgitPlus,
        &image,
        &[1, 2, 8],
        &acked,
        &script,
    )
    .unwrap_or_else(|e| panic!("restart after mid-recovery cut: {e}"));
    let _ = fs::remove_dir_all(&dir);
}

/// Snapshot→restore→snapshot must be bit-identical, and the
/// post-recovery snapshot itself must not depend on the lane count.
fn snapshot_roundtrip<C, F>(make: F, name: &str)
where
    C: Supervised + Clone,
    F: Fn() -> C,
{
    let script = drill_script(300, 200, 0x5EED);
    let mut base = make();
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            base.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .unwrap_or_else(|e| panic!("{name}: write op {i} failed: {e}"));
        } else {
            base.read(DataAddr::new(addr))
                .unwrap_or_else(|e| panic!("{name}: read op {i} failed: {e}"));
        }
    }
    // A non-trivial remap table, persisted, so the snapshot carries it.
    base.quarantine_line(DataAddr::new(3)).expect("quarantine");
    base.persist_quarantine();
    base.crash();

    let mut reference: Option<Vec<u8>> = None;
    for lanes in [1usize, 2, 8] {
        let mut c = base.clone();
        Supervisor::new()
            .with_lanes(lanes)
            .recover(&mut c)
            .unwrap_or_else(|e| panic!("{name}: recovery at {lanes} lanes failed: {e}"));
        let b1 = c.domain_mut().snapshot().to_bytes();
        let snap = Snapshot::from_bytes(&b1).expect("parse own snapshot");
        let mut fresh = make();
        fresh
            .domain_mut()
            .apply_snapshot(&snap)
            .expect("apply snapshot to fresh domain");
        let b2 = fresh.domain_mut().snapshot().to_bytes();
        assert_eq!(
            b1, b2,
            "{name}: snapshot→restore→snapshot diverged at {lanes} lanes"
        );
        match &reference {
            None => reference = Some(b1),
            Some(r) => assert_eq!(
                r, &b1,
                "{name}: post-recovery snapshot differs between lane counts"
            ),
        }
    }
}

#[test]
fn snapshot_roundtrip_is_lane_invariant_bonsai_agit_plus() {
    snapshot_roundtrip(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &config()),
        "agit-plus",
    );
}

#[test]
fn snapshot_roundtrip_is_lane_invariant_sgx_asit() {
    snapshot_roundtrip(|| SgxController::new(SgxScheme::Asit, &config()), "asit");
}

#[test]
fn corrupt_qtable_image_is_typed_and_feeds_rung_three() {
    let dir = scratch("corrupt-qtable");
    let image = dir.join("image.wal");
    let cfg = config();
    let script = drill_script(120, 80, 0xBAD5EED);
    let mut acked = Vec::new();
    {
        let backend = FileBackend::open(&image).expect("open fresh image");
        let (mut ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &cfg, backend);
        recover_fresh(&mut ctrl, hint);
        for (i, &(is_write, addr)) in script.iter().enumerate() {
            if is_write {
                ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                    .expect("drill write");
                acked.push((i as u64, addr));
            } else {
                ctrl.read(DataAddr::new(addr)).expect("drill read");
            }
        }
        // Poison the persisted quarantine-table header in the image.
        let qaddr = ctrl.layout().qtable_addr(0);
        ctrl.domain_mut()
            .device_mut()
            .poke(qaddr, Block::from_bytes([0xFF; BLOCK_BYTES]));
        ctrl.domain_mut().drain_wpq();
    }
    let backend = FileBackend::open(&image).expect("reopen image");
    let (mut ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &cfg, backend);
    let err = hint.expect("corrupt qtable must surface a typed reopen hint");
    assert!(
        matches!(
            err,
            RecoveryError::CorruptImage {
                what: "quarantine table"
            }
        ),
        "unexpected hint: {err}"
    );
    let out = Supervisor::new()
        .repair_then_recover(&mut ctrl, &err)
        .expect("rung-3 entry must still recover the image");
    assert!(
        out.escalations >= 1,
        "rung-3 entry must count an escalation"
    );
    for &(i, addr) in &acked {
        let want = op_payload(i, addr);
        let last = acked
            .iter()
            .rev()
            .find(|&&(_, a)| a == addr)
            .expect("addr is in the log");
        if last.0 != i {
            continue; // overwritten later; only the final payload must survive
        }
        assert_eq!(
            ctrl.read(DataAddr::new(addr)).expect("post-recovery read"),
            want,
            "acked write at op {i} lost after rung-3 recovery"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
