//! Differential testing: every recoverable scheme, fed the same random
//! script with the same crash points, must expose byte-identical memory
//! contents afterwards. Any divergence means one controller's
//! crash-consistency machinery dropped or resurrected a write.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::{Block, SplitMix64};

#[derive(Clone, Copy, Debug)]
enum Step {
    Write(u64, u64),
    Read(u64),
    Crash,
}

fn random_script(seed: u64, len: usize) -> Vec<Step> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..10) {
            0..=4 => Step::Write(rng.gen_range(0..600), rng.next_u64()),
            5..=8 => Step::Read(rng.gen_range(0..600)),
            _ => Step::Crash,
        })
        .collect()
}

fn payload(tag: u64) -> Block {
    Block::from_words([
        tag,
        tag ^ 0xA5A5,
        !tag,
        tag << 3,
        tag >> 3,
        tag.wrapping_add(9),
        tag.wrapping_mul(7),
        1,
    ])
}

/// Runs the script and returns the final visible contents of the touched
/// addresses.
fn run_script<C: MemoryController>(mut ctrl: C, script: &[Step]) -> Vec<(u64, Block)> {
    let mut touched = std::collections::BTreeSet::new();
    for step in script {
        match step {
            Step::Write(addr, tag) => {
                ctrl.write(DataAddr::new(*addr), payload(*tag))
                    .expect("write");
                touched.insert(*addr);
            }
            Step::Read(addr) => {
                if touched.contains(addr) {
                    ctrl.read(DataAddr::new(*addr))
                        .expect("read of written line");
                }
            }
            Step::Crash => {
                ctrl.crash();
                ctrl.recover().expect("recoverable scheme");
            }
        }
    }
    touched
        .into_iter()
        .map(|a| (a, ctrl.read(DataAddr::new(a)).expect("final read")))
        .collect()
}

#[test]
fn recoverable_schemes_are_observationally_equivalent() {
    let cfg = AnubisConfig::small_test();
    for seed in [3u64, 17, 99] {
        let script = random_script(seed, 120);
        let reference = run_script(
            BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
            &script,
        );
        for scheme in [
            BonsaiScheme::Osiris,
            BonsaiScheme::AgitRead,
            BonsaiScheme::AgitPlus,
            BonsaiScheme::CounterWriteThrough,
        ] {
            let got = run_script(BonsaiController::new(scheme, &cfg), &script);
            assert_eq!(got, reference, "seed {seed}: {} diverged", scheme.name());
        }
        for scheme in [SgxScheme::StrictPersist, SgxScheme::Asit] {
            let got = run_script(SgxController::new(scheme, &cfg), &script);
            assert_eq!(got, reference, "seed {seed}: {} diverged", scheme.name());
        }
    }
}

#[test]
fn schemes_agree_without_crashes_too() {
    // Sanity: remove the crash steps — all schemes, including the
    // unrecoverable baselines, agree while power stays on.
    let cfg = AnubisConfig::small_test();
    let script: Vec<Step> = random_script(7, 150)
        .into_iter()
        .filter(|s| !matches!(s, Step::Crash))
        .collect();
    let reference = run_script(
        BonsaiController::new(BonsaiScheme::WriteBack, &cfg),
        &script,
    );
    for scheme in BonsaiScheme::all_with_extras() {
        let got = run_script(BonsaiController::new(scheme, &cfg), &script);
        assert_eq!(got, reference, "{} diverged", scheme.name());
    }
    for scheme in SgxScheme::all_with_extras() {
        let got = run_script(SgxController::new(scheme, &cfg), &script);
        assert_eq!(got, reference, "{} diverged", scheme.name());
    }
}
