//! Deterministic mutation fuzz over every durable-state parser.
//!
//! The at-rest adversary model says: *anything* on disk may be garbage
//! when the process comes back. Every parser of durable bytes — the WAL
//! image replay, the snapshot decoder, and the freshness-anchor probe —
//! must therefore terminate with `Ok` or a *typed* error on arbitrary
//! mutations, and never panic. The mutations here are driven by the
//! in-tree SplitMix64, so any failure reproduces bit-for-bit from the
//! seed printed in the assertion message.

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

use anubis_nvm::{
    anchor_path_for, AnchorPolicy, Block, FileBackend, FreshnessAnchor, NvmBackend, Snapshot,
    SplitMix64, WriteOp,
};

const KEY: [u64; 2] = [7, 13];
const ROUNDS: u64 = 300;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "anubis-durable-fuzz-{}-{}",
        std::process::id(),
        name
    ))
}

fn cleanup(p: &PathBuf) {
    let _ = fs::remove_file(p);
    let _ = fs::remove_file(anchor_path_for(p));
}

/// One deterministic mutation: xor a byte, shear the tail, or splice
/// random bytes in at a random position.
fn mutate(bytes: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.next_u64() % 3 {
        0 if !out.is_empty() => {
            let i = rng.gen_range(0..out.len() as u64) as usize;
            out[i] ^= (1 + rng.next_u64() % 255) as u8;
        }
        1 if !out.is_empty() => {
            let keep = rng.gen_range(0..out.len() as u64) as usize;
            out.truncate(keep);
        }
        _ => {
            let at = if out.is_empty() {
                0
            } else {
                rng.gen_range(0..out.len() as u64 + 1) as usize
            };
            let n = 1 + rng.gen_range(0..40) as usize;
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            out.splice(at..at, junk);
        }
    }
    out
}

/// Builds a realistic WAL image: a few epochs of stores, register
/// writes, and barriers.
fn seed_wal_bytes(name: &str) -> Vec<u8> {
    let p = tmp(name);
    cleanup(&p);
    {
        let mut b = FileBackend::open(&p).expect("fresh WAL image opens");
        for i in 0..12u64 {
            b.store(i * 7, Block::filled(i as u8));
            b.store_reg(0, Block::filled(0xA0 | i as u8));
            b.barrier().expect("barrier on fresh image");
        }
    }
    let bytes = fs::read(&p).expect("read seeded WAL");
    cleanup(&p);
    bytes
}

#[test]
fn wal_parser_never_panics_on_mutated_images() {
    let seed_bytes = seed_wal_bytes("wal");
    let p = tmp("wal-mut");
    let mut rng = SplitMix64::new(0xF022_DEAD_BEEF_0001);
    for round in 0..ROUNDS {
        let mutated = mutate(&seed_bytes, &mut rng);
        fs::write(&p, &mutated).expect("write mutated image");
        let result = panic::catch_unwind(AssertUnwindSafe(|| match FileBackend::open(&p) {
            Ok(b) => {
                // An accepted image must be internally consistent enough
                // to serve loads without panicking either.
                let _ = b.load(7);
                let _ = b.entries().len();
                true
            }
            Err(e) => {
                assert!(!e.to_string().is_empty());
                false
            }
        }));
        assert!(
            result.is_ok(),
            "WAL open panicked at fuzz round {round} ({} mutated bytes)",
            mutated.len()
        );
    }
    cleanup(&p);
}

#[test]
fn anchored_wal_open_never_panics_on_mutated_images() {
    let seed_bytes = seed_wal_bytes("walanc");
    let p = tmp("walanc-mut");
    cleanup(&p);
    // Give the mutated image a live anchor so the freshness check runs.
    FreshnessAnchor::create(anchor_path_for(&p), KEY, 3).expect("seed anchor");
    let mut rng = SplitMix64::new(0xF022_DEAD_BEEF_0002);
    for round in 0..ROUNDS {
        let mutated = mutate(&seed_bytes, &mut rng);
        fs::write(&p, &mutated).expect("write mutated image");
        let result =
            panic::catch_unwind(AssertUnwindSafe(|| {
                match FileBackend::open_with_anchor(&p, KEY, AnchorPolicy::Strict) {
                    Ok(b) => {
                        let _ = b.freshness();
                        let _ = b.epoch();
                    }
                    Err(e) => assert!(!e.to_string().is_empty()),
                }
            }));
        assert!(
            result.is_ok(),
            "anchored WAL open panicked at round {round}"
        );
        // The anchor may have been healed forward by an accepted image;
        // reseal a known value so later rounds still exercise the check.
        if FreshnessAnchor::probe(&anchor_path_for(&p), KEY) != Ok(Some(3)) {
            let _ = fs::remove_file(anchor_path_for(&p));
            FreshnessAnchor::create(anchor_path_for(&p), KEY, 3).expect("reseal anchor");
        }
    }
    cleanup(&p);
}

#[test]
fn snapshot_parser_never_panics_on_mutated_images() {
    let snap = Snapshot {
        epoch: 17,
        entries: (0..20).map(|i| (i * 3, Block::filled(i as u8))).collect(),
        regs: vec![(0, Block::filled(1)), (2, Block::filled(9))],
        pregs_entries: vec![WriteOp::new(
            anubis_nvm::BlockAddr::new(5),
            Block::filled(5),
        )],
        pregs_done: true,
        pregs_drained: 1,
        qtable: vec![Block::filled(0x51)],
    };
    let seed_bytes = snap.to_bytes();
    let mut rng = SplitMix64::new(0xF022_DEAD_BEEF_0003);
    for round in 0..ROUNDS {
        let mutated = mutate(&seed_bytes, &mut rng);
        let result =
            panic::catch_unwind(AssertUnwindSafe(|| match Snapshot::from_bytes(&mutated) {
                Ok(s) => {
                    let _ = s.to_bytes();
                }
                Err(e) => assert!(!e.to_string().is_empty()),
            }));
        assert!(result.is_ok(), "snapshot parse panicked at round {round}");
    }
}

#[test]
fn anchor_probe_never_panics_on_mutated_files() {
    let p = tmp("anchor-mut");
    let seed_path = tmp("anchor-seed");
    cleanup(&seed_path);
    FreshnessAnchor::create(seed_path.clone(), KEY, 41).expect("seed anchor");
    let seed_bytes = fs::read(&seed_path).expect("read seeded anchor");
    cleanup(&seed_path);
    let mut rng = SplitMix64::new(0xF022_DEAD_BEEF_0004);
    for round in 0..ROUNDS {
        let mutated = mutate(&seed_bytes, &mut rng);
        fs::write(&p, &mutated).expect("write mutated anchor");
        let result =
            panic::catch_unwind(AssertUnwindSafe(|| match FreshnessAnchor::probe(&p, KEY) {
                Ok(_) => {}
                Err(e) => assert!(!e.to_string().is_empty()),
            }));
        assert!(result.is_ok(), "anchor probe panicked at round {round}");
    }
    let _ = fs::remove_file(&p);
}
