//! Supervisor re-entrancy: a power cut at *any* rung of the escalation
//! ladder must leave the machine in a state from which running the whole
//! ladder again from scratch terminates in a structured outcome — and a
//! further clean crash/recover cycle is a fixpoint (`Recovered`, nothing
//! left to repair).
//!
//! Property-style: each trial draws a workload, a mid-workload fault
//! (power cut or bit flip) and a write-cut point inside the first
//! recovery attempt from a `SplitMix64` stream, so failures reproduce
//! from the trial seed alone.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, RecoveryOutcome, SgxController,
    SgxScheme, Supervised, Supervisor,
};
use anubis_nvm::{Block, FaultPlan, MemBackend, SplitMix64};
use std::collections::BTreeMap;

const TRIALS: u64 = 8;
const OPS: u64 = 40;
const ADDR_SPACE: u64 = 200;

fn config() -> AnubisConfig {
    AnubisConfig::small_test().with_spare_blocks(256)
}

fn payload(i: u64, addr: u64) -> Block {
    let x = i * 1009 + addr;
    Block::from_words([
        x,
        x * 3,
        !x,
        x << 9,
        x ^ 0xFEED,
        x + 1,
        x.rotate_left(7),
        0x42,
    ])
}

/// The trial's write-only script, regenerated from the same seed for the
/// dry-run count and the faulted run.
fn addrs(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..OPS).map(|_| rng.next_u64() % ADDR_SPACE).collect()
}

/// Runs the script with `plan` armed; returns the acknowledged-write
/// model and the one in-flight (unacknowledged) write, if any.
#[allow(clippy::type_complexity)]
fn run_faulted<C: Supervised + ?Sized>(
    ctrl: &mut C,
    script: &[u64],
    plan: FaultPlan,
) -> (BTreeMap<u64, Block>, Option<(u64, Block)>) {
    ctrl.domain_mut().arm_fault(plan);
    let mut model = BTreeMap::new();
    let mut attempted = None;
    for (i, &addr) in script.iter().enumerate() {
        let data = payload(i as u64, addr);
        match ctrl.write(DataAddr::new(addr), data) {
            Ok(()) => {
                model.insert(addr, data);
            }
            Err(e) if e.is_power_loss() => {
                attempted = Some((addr, data));
                break;
            }
            Err(e) if e.is_detected_corruption() => break,
            Err(e) => panic!("op {i}: unexpected write error: {e}"),
        }
    }
    (model, attempted)
}

/// Every acknowledged write must read back as its committed value, the
/// in-flight value, or an explicit zero on a quarantined line.
fn check_model<C: Supervised + ?Sized>(
    ctrl: &mut C,
    model: &BTreeMap<u64, Block>,
    attempted: Option<(u64, Block)>,
    ctx: &str,
) {
    for (&addr, expect) in model {
        let da = DataAddr::new(addr);
        let got = ctrl
            .read(da)
            .unwrap_or_else(|e| panic!("{ctx}: read of acknowledged addr {addr} failed: {e}"));
        let new_ok = attempted == Some((addr, got));
        let quarantined_zero = got.is_zeroed() && ctrl.is_line_quarantined(da);
        assert!(
            got == *expect || new_ok || quarantined_zero,
            "{ctx}: acknowledged addr {addr} holds wrong data"
        );
    }
}

fn reentry_property<C, F>(make: F, seed: u64)
where
    C: Supervised,
    F: Fn() -> C,
{
    for trial in 0..TRIALS {
        let trial_seed = seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SplitMix64::new(trial_seed);
        let script = addrs(trial_seed);

        // Dry run: how many persist writes does the script perform?
        let total = {
            let mut dry = make();
            for (i, &addr) in script.iter().enumerate() {
                dry.write(DataAddr::new(addr), payload(i as u64, addr))
                    .unwrap_or_else(|e| panic!("trial {trial}: dry write {i} failed: {e}"));
            }
            dry.domain().persist_writes()
        };

        let k = rng.next_u64() % total.max(1);
        let plan = if trial % 2 == 0 {
            FaultPlan::power_cut_after(k)
        } else {
            let n = 1 + (rng.next_u64() % 3) as usize;
            let bits = (0..n).map(|_| (rng.next_u64() % 512) as usize).collect();
            FaultPlan::bit_flip_after(k, bits)
        };
        let ctx = format!("trial {trial} ({plan:?})");

        let mut ctrl = make();
        let (model, attempted) = run_faulted(&mut ctrl, &script, plan);
        ctrl.crash();

        // First recovery attempt, cut short by a write cut at a random
        // point — a second power cut landing at whichever rung the
        // ladder had reached.
        let supervisor = Supervisor::new().with_lanes(2).with_max_retries(2);
        let cut_after = 1 + rng.next_u64() % 200;
        ctrl.domain_mut().device_mut().arm_write_cut(cut_after);
        let _ = supervisor.recover(&mut ctrl);
        let fired = ctrl.domain().device().write_cut_fired();
        ctrl.domain_mut().device_mut().clear_write_cut();
        if fired {
            ctrl.crash();
        }

        // Re-entry: the ladder restarted from scratch must terminate in
        // a structured outcome and honor the acknowledged-write contract.
        supervisor
            .recover(&mut ctrl)
            .unwrap_or_else(|e| panic!("{ctx}: re-entered supervised recovery failed: {e}"));
        check_model(&mut ctrl, &model, attempted, &ctx);

        // Fixpoint: with no new faults, another full cycle finds nothing
        // left to repair.
        ctrl.crash();
        let again = supervisor
            .recover(&mut ctrl)
            .unwrap_or_else(|e| panic!("{ctx}: clean re-recovery failed: {e}"));
        assert_eq!(
            again.outcome,
            RecoveryOutcome::Recovered,
            "{ctx}: clean re-recovery must be a fixpoint"
        );
        check_model(&mut ctrl, &model, attempted, &ctx);
    }
}

/// One shared supervisor driving ladders over *distinct* persistence
/// domains concurrently: each thread owns a controller of a different
/// family/scheme mix, takes a mid-workload fault, crashes, then all
/// threads release at a barrier and recover at the same time. The
/// supervisor holds no per-domain state, so concurrent ladders must
/// neither interfere nor deadlock, and each domain must independently
/// honor the acknowledged-write contract and reach the clean fixpoint.
#[test]
fn supervisor_recovers_distinct_domains_concurrently() {
    use std::sync::{Arc, Barrier};

    const THREADS: usize = 6;
    let supervisor = Arc::new(Supervisor::new().with_lanes(2).with_max_retries(2));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let supervisor = Arc::clone(&supervisor);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let trial_seed = 0xC0_FFEE ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = SplitMix64::new(trial_seed);
                let script = addrs(trial_seed);
                let ctx = format!("concurrent domain {t}");

                // Each thread's controller is its own persistence domain;
                // families alternate so both ladder shapes run at once.
                let make = |which: usize| -> Box<dyn Supervised<Backend = MemBackend>> {
                    match which % 3 {
                        0 => Box::new(BonsaiController::new(BonsaiScheme::AgitPlus, &config())),
                        1 => Box::new(BonsaiController::new(BonsaiScheme::Osiris, &config())),
                        _ => Box::new(SgxController::new(SgxScheme::Asit, &config())),
                    }
                };

                let total = {
                    let mut dry = make(t);
                    for (i, &addr) in script.iter().enumerate() {
                        dry.write(DataAddr::new(addr), payload(i as u64, addr))
                            .unwrap_or_else(|e| panic!("{ctx}: dry write {i} failed: {e}"));
                    }
                    dry.domain().persist_writes()
                };
                let k = rng.next_u64() % total.max(1);
                let plan = if t % 2 == 0 {
                    FaultPlan::power_cut_after(k)
                } else {
                    let n = 1 + (rng.next_u64() % 3) as usize;
                    let bits = (0..n).map(|_| (rng.next_u64() % 512) as usize).collect();
                    FaultPlan::bit_flip_after(k, bits)
                };

                let mut ctrl = make(t);
                let (model, attempted) = run_faulted(&mut *ctrl, &script, plan);
                ctrl.crash();

                // Everyone crashes first, then everyone recovers at once.
                barrier.wait();
                supervisor
                    .recover(&mut *ctrl)
                    .unwrap_or_else(|e| panic!("{ctx}: concurrent recovery failed: {e}"));
                check_model(&mut *ctrl, &model, attempted, &ctx);

                ctrl.crash();
                barrier.wait();
                let again = supervisor
                    .recover(&mut *ctrl)
                    .unwrap_or_else(|e| panic!("{ctx}: clean re-recovery failed: {e}"));
                assert_eq!(
                    again.outcome,
                    RecoveryOutcome::Recovered,
                    "{ctx}: clean concurrent re-recovery must be a fixpoint"
                );
                check_model(&mut *ctrl, &model, attempted, &ctx);
            })
        })
        .collect();

    for h in handles {
        h.join().expect("concurrent recovery thread panicked");
    }
}

#[test]
fn supervisor_is_reentrant_bonsai_agit_plus() {
    reentry_property(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &config()),
        0xB0,
    );
}

#[test]
fn supervisor_is_reentrant_bonsai_osiris() {
    reentry_property(
        || BonsaiController::new(BonsaiScheme::Osiris, &config()),
        0x0B,
    );
}

#[test]
fn supervisor_is_reentrant_sgx_asit() {
    reentry_property(|| SgxController::new(SgxScheme::Asit, &config()), 0x5A);
}
