//! Freshness-anchor refusal ladder: a valid anchor proving rollback is
//! always refused; a missing or corrupt anchor is refused under the
//! strict policy and recoverable only through the explicit operator
//! override (`AnchorPolicy::Override`) — never by silently accepting a
//! default epoch; an anchor lagging exactly one barrier behind (the
//! honest crash window) heals forward. Refusals must also land in the
//! supervisor's telemetry counters, and a stale snapshot image must be
//! rejected with a typed error and counted.

use std::fs;
use std::path::PathBuf;

use anubis::telemetry::Telemetry;
use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, RecoveryError,
    Supervisor,
};
use anubis_nvm::{
    anchor_path_for, AnchorPolicy, Block, FileBackend, FreshnessAnchor, NvmBackend, NvmError,
    SnapshotError,
};

const SCHEME_LABEL: &str = "agit-plus";

fn cfg() -> AnubisConfig {
    AnubisConfig::small_test()
}

fn key() -> [u64; 2] {
    cfg().key.0
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "anubis-anchor-refusal-{}-{}.wal",
        std::process::id(),
        name
    ))
}

fn cleanup(image: &PathBuf) {
    let _ = fs::remove_file(image);
    let _ = fs::remove_file(anchor_path_for(image));
}

/// Opens the image under the anchor and reopens a controller on it.
fn reopen(
    image: &PathBuf,
    policy: AnchorPolicy,
) -> (BonsaiController<FileBackend>, Option<RecoveryError>) {
    let backend = FileBackend::open_with_anchor(image, key(), policy).expect("anchored open");
    BonsaiController::reopen(BonsaiScheme::AgitPlus, &cfg(), backend)
}

/// Feeds a reopen hint into the supervisor ladder the way the server's
/// boot path does.
fn recover_with_hint(
    ctrl: &mut BonsaiController<FileBackend>,
    hint: &Option<RecoveryError>,
) -> Result<(), RecoveryError> {
    let sup = Supervisor::new();
    match hint {
        Some(e) => sup.repair_then_recover(ctrl, e).map(|_| ()),
        None => sup.recover(ctrl).map(|_| ()),
    }
}

/// One generation of history: anchored open, recover, write a run of
/// tagged lines, clean shutdown. Leaves image + anchor sealed on disk.
fn seed_generation(image: &PathBuf, writes: std::ops::Range<u64>, tag: u8) {
    let (mut c, hint) = reopen(image, AnchorPolicy::Strict);
    recover_with_hint(&mut c, &hint).expect("seed generation must recover");
    for i in writes {
        c.write(DataAddr::new(i * 3), Block::filled(tag | (i as u8 & 0x0F)))
            .expect("seed write");
    }
    c.shutdown_flush().expect("seed flush");
}

/// Reads back the seed-generation lines and checks them bit-for-bit.
fn assert_generation_intact(
    c: &mut BonsaiController<FileBackend>,
    writes: std::ops::Range<u64>,
    tag: u8,
) {
    for i in writes {
        assert_eq!(
            c.read(DataAddr::new(i * 3)).expect("post-recovery read"),
            Block::filled(tag | (i as u8 & 0x0F)),
            "line {i} must survive recovery intact"
        );
    }
}

#[test]
fn image_rollback_is_refused_and_counted() {
    let image = tmp("rollback");
    cleanup(&image);
    seed_generation(&image, 0..20, 0xA0);
    let old_image = fs::read(&image).expect("capture generation-1 image");
    // Generation 2 moves both the image and the anchor forward.
    seed_generation(&image, 20..40, 0xB0);
    // Roll the image back to generation 1; the anchor stays sealed ahead.
    fs::write(&image, &old_image).expect("restore stale image");

    let (mut c, hint) = reopen(&image, AnchorPolicy::Strict);
    assert!(
        matches!(hint, Some(RecoveryError::RollbackDetected { .. })),
        "rolled-back image must surface RollbackDetected at reopen, got {hint:?}"
    );
    let (reg, tel) = Telemetry::private();
    c.set_telemetry(tel);
    let err = recover_with_hint(&mut c, &hint).expect_err("ladder must refuse rollback");
    assert!(err.is_refusal(), "rollback must be a refusal: {err}");
    assert!(matches!(err, RecoveryError::RollbackDetected { .. }));
    assert!(
        reg.snapshot()
            .counter("supervisor_rollback_refusals_total", SCHEME_LABEL)
            >= 1,
        "refusal must be counted in supervisor telemetry"
    );
    cleanup(&image);
}

#[test]
fn missing_anchor_is_refused_under_strict_policy() {
    let image = tmp("anchor-missing");
    cleanup(&image);
    seed_generation(&image, 0..20, 0xA0);
    fs::remove_file(anchor_path_for(&image)).expect("delete anchor");

    let (mut c, hint) = reopen(&image, AnchorPolicy::Strict);
    assert!(
        matches!(hint, Some(RecoveryError::FreshnessAnchorViolation { .. })),
        "anchor loss must surface a freshness violation, got {hint:?}"
    );
    let (reg, tel) = Telemetry::private();
    c.set_telemetry(tel);
    let err = recover_with_hint(&mut c, &hint).expect_err("strict policy must refuse");
    assert!(err.is_refusal(), "anchor loss must be a refusal: {err}");
    assert!(
        reg.snapshot()
            .counter("supervisor_anchor_refusals_total", SCHEME_LABEL)
            >= 1,
        "anchor refusal must be counted in supervisor telemetry"
    );
    cleanup(&image);
}

#[test]
fn missing_anchor_recovers_only_via_explicit_override() {
    let image = tmp("anchor-override");
    cleanup(&image);
    seed_generation(&image, 0..20, 0xA0);
    fs::remove_file(anchor_path_for(&image)).expect("delete anchor");

    // The override is an explicit operator decision, not a default: the
    // epoch cannot be verified, but service resumes with the image as-is
    // and a fresh anchor is sealed at the image's epoch (never at a
    // default epoch 0, which would mask a later rollback).
    let (mut c, hint) = reopen(&image, AnchorPolicy::Override);
    assert!(
        hint.is_none(),
        "override must clear the freshness hint, got {hint:?}"
    );
    recover_with_hint(&mut c, &hint).expect("override recovery");
    assert_generation_intact(&mut c, 0..20, 0xA0);
    let image_epoch = c.domain().epoch();
    assert!(image_epoch > 0, "seeded image must have real history");
    assert_eq!(
        FreshnessAnchor::probe(&anchor_path_for(&image), key()),
        Ok(Some(image_epoch)),
        "override must reseal the anchor at the image epoch"
    );
    cleanup(&image);
}

#[test]
fn corrupt_anchor_refused_strict_recoverable_via_override() {
    let image = tmp("anchor-corrupt");
    cleanup(&image);
    seed_generation(&image, 0..20, 0xC0);
    // Trash both ping-pong slots: no valid seal survives.
    fs::write(anchor_path_for(&image), [0xFFu8; 44]).expect("corrupt anchor");

    let (mut c, hint) = reopen(&image, AnchorPolicy::Strict);
    assert!(
        matches!(hint, Some(RecoveryError::FreshnessAnchorViolation { .. })),
        "corrupt anchor must surface a freshness violation, got {hint:?}"
    );
    let err = recover_with_hint(&mut c, &hint).expect_err("strict policy must refuse");
    assert!(err.is_refusal(), "corrupt anchor must be a refusal: {err}");

    let (mut c, hint) = reopen(&image, AnchorPolicy::Override);
    assert!(hint.is_none(), "override must clear the hint, got {hint:?}");
    recover_with_hint(&mut c, &hint).expect("override recovery");
    assert_generation_intact(&mut c, 0..20, 0xC0);
    cleanup(&image);
}

#[test]
fn anchor_lagging_one_barrier_heals_forward() {
    let image = tmp("anchor-lag");
    cleanup(&image);
    seed_generation(&image, 0..20, 0xD0);
    let apath = anchor_path_for(&image);
    let image_epoch = {
        let b =
            FileBackend::open_with_anchor(&image, key(), AnchorPolicy::Strict).expect("probe open");
        b.epoch()
    };
    assert!(image_epoch > 1, "seeded image must have several barriers");
    // Re-seal the anchor exactly one barrier behind: the honest crash
    // window (frame fsynced, seal lost). Strict policy must heal, not
    // refuse.
    fs::remove_file(&apath).expect("drop healed anchor");
    FreshnessAnchor::create(apath.clone(), key(), image_epoch - 1).expect("lagged anchor");

    let (mut c, hint) = reopen(&image, AnchorPolicy::Strict);
    assert!(
        hint.is_none(),
        "one-barrier lag is the honest crash window, got {hint:?}"
    );
    recover_with_hint(&mut c, &hint).expect("healed recovery");
    assert_generation_intact(&mut c, 0..20, 0xD0);
    assert_eq!(
        FreshnessAnchor::probe(&apath, key()),
        Ok(Some(image_epoch)),
        "heal must reseal the anchor at the image epoch"
    );
    cleanup(&image);
}

#[test]
fn stale_snapshot_restore_is_typed_and_counted() {
    let image = tmp("stale-snap");
    cleanup(&image);
    let (mut c, hint) = reopen(&image, AnchorPolicy::Strict);
    recover_with_hint(&mut c, &hint).expect("fresh recovery");
    for i in 0..10u64 {
        c.write(DataAddr::new(i * 3), Block::filled(0xE0 | i as u8))
            .expect("pre-snapshot write");
    }
    let snap = c.domain_mut().snapshot();
    // Move the device past the snapshot: more writes, more barriers.
    for i in 10..20u64 {
        c.write(DataAddr::new(i * 3), Block::filled(0xE0 | (i as u8 & 0x0F)))
            .expect("post-snapshot write");
    }
    c.shutdown_flush().expect("flush past snapshot");
    assert!(
        c.domain().epoch() > snap.epoch,
        "device must have moved past the captured snapshot"
    );

    let (reg, tel) = Telemetry::private();
    c.set_telemetry(tel);
    let err = c
        .restore_snapshot(&snap)
        .expect_err("stale snapshot must be refused");
    assert!(
        matches!(err, NvmError::Snapshot(SnapshotError::StaleEpoch { .. })),
        "refusal must be the typed StaleEpoch, got {err}"
    );
    c.publish_telemetry();
    assert!(
        reg.snapshot()
            .counter("snapshot_rejected_total", SCHEME_LABEL)
            >= 1,
        "stale snapshot must be counted in snapshot_rejected_total"
    );
    // The live state is untouched by the refused restore.
    assert_generation_intact(&mut c, 10..20, 0xE0);
    cleanup(&image);
}
