//! Parallel/serial recovery equivalence: for crash points across a
//! scripted workload, recovery at 2 and 8 lanes must produce a
//! bit-identical [`RecoveryReport`], identical device statistics, and an
//! identical recovered memory image to the serial (1-lane) path.
//!
//! This is the determinism contract of `anubis::parallel` — the parallel
//! engine is an *implementation* of the same recovery algorithms, not a
//! variant of them.
//!
//! Exhaustive over crash points by default; `ANUBIS_FAULT_SMOKE=1`
//! selects the same strided subset as the fault matrices.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, RecoveryError,
    RecoveryReport, SgxController, SgxScheme,
};
use anubis_nvm::Block;
use std::collections::HashMap;

const LANE_COUNTS: [usize; 2] = [2, 8];

fn payload(op: u64) -> Block {
    Block::from_words([
        op,
        op * 3,
        !op,
        op << 9,
        op ^ 0xFEED,
        op + 1,
        op.rotate_left(7),
        0x42,
    ])
}

/// Same scripted workload shape as `crash_matrix.rs` / `fault_matrix.rs`.
fn script(n: usize) -> Vec<(bool, u64)> {
    (0..n as u64)
        .map(|i| (i % 3 != 2, (i * 37) % 300))
        .collect()
}

/// Exhaustive by default; `ANUBIS_FAULT_SMOKE` selects a strided subset
/// for quick CI runs.
fn stride() -> usize {
    if std::env::var_os("ANUBIS_FAULT_SMOKE").is_some() {
        23
    } else {
        1
    }
}

fn equivalence_matrix<C, F, R>(make: F, recover_lanes: R, name: &str)
where
    C: MemoryController + Clone,
    F: Fn() -> C,
    R: Fn(&mut C, usize) -> Result<RecoveryReport, RecoveryError>,
{
    let ops = script(48);
    for k in (0..=ops.len()).step_by(stride()) {
        let mut ctrl = make();
        let mut model: HashMap<u64, Block> = HashMap::new();
        for (i, (is_write, addr)) in ops.iter().take(k).enumerate() {
            if *is_write {
                let b = payload(i as u64);
                ctrl.write(DataAddr::new(*addr), b)
                    .unwrap_or_else(|e| panic!("{name}: write {i} failed: {e}"));
                model.insert(*addr, b);
            } else {
                ctrl.read(DataAddr::new(*addr))
                    .unwrap_or_else(|e| panic!("{name}: read {i} failed: {e}"));
            }
        }
        ctrl.crash();

        let mut serial = ctrl.clone();
        let serial_report = recover_lanes(&mut serial, 1)
            .unwrap_or_else(|e| panic!("{name}: serial recovery at k={k} failed: {e}"));

        for lanes in LANE_COUNTS {
            let mut par = ctrl.clone();
            let report = recover_lanes(&mut par, lanes)
                .unwrap_or_else(|e| panic!("{name}: {lanes}-lane recovery at k={k} failed: {e}"));
            assert_eq!(
                report, serial_report,
                "{name}: RecoveryReport diverged at k={k} lanes={lanes}"
            );
            assert_eq!(
                par.domain().device().stats(),
                serial.domain().device().stats(),
                "{name}: device stats diverged at k={k} lanes={lanes}"
            );
            assert_eq!(
                par.domain().persist_writes(),
                serial.domain().persist_writes(),
                "{name}: persist-write count diverged at k={k} lanes={lanes}"
            );
            // Stats compared first — the readback below counts reads.
            for (addr, expect) in &model {
                let got = par.read(DataAddr::new(*addr)).unwrap_or_else(|e| {
                    panic!("{name}: post-recovery read {addr} failed at k={k} lanes={lanes}: {e}")
                });
                assert_eq!(
                    &got, expect,
                    "{name}: addr {addr} diverged at k={k} lanes={lanes}"
                );
            }
        }
    }
}

#[test]
fn osiris_whole_memory_sweep_is_lane_invariant() {
    let cfg = AnubisConfig::small_test();
    equivalence_matrix(
        || BonsaiController::new(BonsaiScheme::Osiris, &cfg),
        |c, lanes| c.recover_with_lanes(lanes),
        "osiris",
    );
}

#[test]
fn agit_read_recovery_is_lane_invariant() {
    let cfg = AnubisConfig::small_test();
    equivalence_matrix(
        || BonsaiController::new(BonsaiScheme::AgitRead, &cfg),
        |c, lanes| c.recover_with_lanes(lanes),
        "agit-read",
    );
}

#[test]
fn agit_plus_recovery_is_lane_invariant() {
    let cfg = AnubisConfig::small_test();
    equivalence_matrix(
        || BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        |c, lanes| c.recover_with_lanes(lanes),
        "agit-plus",
    );
}

#[test]
fn asit_recovery_is_lane_invariant() {
    let cfg = AnubisConfig::small_test();
    equivalence_matrix(
        || SgxController::new(SgxScheme::Asit, &cfg),
        |c, lanes| c.recover_with_lanes(lanes),
        "asit",
    );
}

#[test]
fn strict_persist_recovery_is_lane_invariant() {
    // Strict recovery is trivial, but the report and stats must still be
    // unaffected by the lane count.
    let cfg = AnubisConfig::small_test();
    equivalence_matrix(
        || BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
        |c, lanes| c.recover_with_lanes(lanes),
        "strict-persist",
    );
}

#[test]
fn telemetry_snapshot_is_lane_invariant() {
    // The determinism contract extends to telemetry: counters and gauges
    // published during and after recovery must be bit-identical at 1, 2
    // and 8 lanes, and whole-phase span counts must match. (Per-lane span
    // counts legitimately vary with the lane count and span durations are
    // wall-clock — both excluded.)
    use anubis::telemetry::Telemetry;
    let cfg = AnubisConfig::small_test();
    for lanes_under_test in [1usize, 2, 8] {
        let mut baseline = None;
        // Bonsai (Osiris probe + tree rebuild) and SGX (ST scan + splice)
        // exercise both recovery engines.
        for run in 0..2 {
            let mut ctrl = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
            for (i, (is_write, addr)) in script(48).iter().enumerate() {
                if *is_write {
                    ctrl.write(DataAddr::new(*addr), payload(i as u64)).unwrap();
                } else {
                    ctrl.read(DataAddr::new(*addr)).unwrap();
                }
            }
            ctrl.crash();
            let (reg, tel) = Telemetry::private();
            ctrl.set_telemetry(tel);
            let lanes = if run == 0 { 1 } else { lanes_under_test };
            ctrl.recover_with_lanes(lanes).unwrap();
            ctrl.publish_telemetry();
            let snap = reg.snapshot();
            let view = (
                snap.counters.clone(),
                snap.gauges.clone(),
                reg.span_count("recovery"),
                reg.span_count("recovery_phase"),
            );
            match &baseline {
                None => baseline = Some(view),
                Some(serial) => assert_eq!(
                    serial, &view,
                    "telemetry diverged between 1 and {lanes_under_test} lanes"
                ),
            }
        }
    }
}

#[test]
fn sgx_telemetry_snapshot_is_lane_invariant() {
    use anubis::telemetry::Telemetry;
    let cfg = AnubisConfig::small_test();
    let mut baseline = None;
    for lanes in [1usize, 2, 8] {
        let mut ctrl = SgxController::new(SgxScheme::Asit, &cfg);
        for (i, (is_write, addr)) in script(48).iter().enumerate() {
            if *is_write {
                ctrl.write(DataAddr::new(*addr), payload(i as u64)).unwrap();
            } else {
                ctrl.read(DataAddr::new(*addr)).unwrap();
            }
        }
        ctrl.crash();
        let (reg, tel) = Telemetry::private();
        ctrl.set_telemetry(tel);
        ctrl.recover_with_lanes(lanes).unwrap();
        ctrl.publish_telemetry();
        let snap = reg.snapshot();
        let view = (
            snap.counters.clone(),
            snap.gauges.clone(),
            reg.span_count("recovery"),
            reg.span_count("recovery_phase"),
        );
        match &baseline {
            None => baseline = Some(view),
            Some(serial) => assert_eq!(serial, &view, "asit telemetry diverged at {lanes} lanes"),
        }
    }
}

#[test]
fn reencryption_crash_recovery_is_lane_invariant() {
    // Crash mid page-reencryption (minor counter overflow), then compare
    // the recovery across lane counts — exercises the whole-tree rebuild
    // plus the re-encryption completion path.
    let cfg = AnubisConfig::small_test();
    for scheme in [BonsaiScheme::Osiris, BonsaiScheme::AgitPlus] {
        let mut ctrl = BonsaiController::new(scheme, &cfg);
        let hot = DataAddr::new(70);
        ctrl.write(DataAddr::new(71), payload(999)).unwrap();
        for i in 0..=127u64 {
            ctrl.write(hot, payload(i)).unwrap();
        }
        ctrl.crash();
        let mut serial = ctrl.clone();
        let serial_report = serial
            .recover_with_lanes(1)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        for lanes in LANE_COUNTS {
            let mut par = ctrl.clone();
            let report = par
                .recover_with_lanes(lanes)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert_eq!(report, serial_report, "{} lanes={lanes}", scheme.name());
            assert_eq!(
                par.domain().device().stats(),
                serial.domain().device().stats(),
                "{} lanes={lanes}",
                scheme.name()
            );
            assert_eq!(par.read(hot).unwrap(), payload(127), "{}", scheme.name());
        }
    }
}
